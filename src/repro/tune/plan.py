"""The versioned, reproducible plan artifact.

A :class:`TunePlan` is the durable output of one autotuner search: the
winning knob assignment plus everything needed to reproduce it — the
plan key (what problem it tunes), the search seed, the full evaluation
trace, the modeled elapsed before and after, and the kernel-model
fingerprint the numbers were computed under.  Serialization is plain
JSON with a schema id (:data:`PLAN_SCHEMA`); writing the same search
twice produces byte-identical artifacts (no timestamps, sorted keys).

Plans are *keyed* by :class:`PlanKey` — ``(matrix shape, k, ng,
backend, overlap)`` — and *validated* by the fingerprint: a plan tuned
under one :class:`repro.gpu.specs.GPUSpec` is stale under another even
though the key matches (see :mod:`repro.tune.cache`).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields, replace
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from ..errors import ConfigurationError

__all__ = ["PLAN_SCHEMA", "PlanKey", "TunePlan", "load_plan_file",
           "coerce_plan_knobs", "apply_plan_to_config"]

#: Schema id stamped into (and required of) every plan artifact.
PLAN_SCHEMA = "repro-tune-plan/1"


@dataclass(frozen=True)
class PlanKey:
    """What a plan tunes: the problem identity the cache indexes on."""

    m: int
    n: int
    k: int
    ng: int
    backend: str = "simulated"
    overlap: bool = True

    def __post_init__(self) -> None:
        for name in ("m", "n", "k", "ng"):
            value = getattr(self, name)
            if not isinstance(value, int) or value < 1:
                raise ConfigurationError(
                    f"plan key {name} must be a positive int, got "
                    f"{value!r}")
        if not self.backend:
            raise ConfigurationError("plan key backend must be non-empty")

    def canonical(self) -> str:
        """Stable one-line identity (the cache key string)."""
        return (f"m={self.m},n={self.n},k={self.k},ng={self.ng},"
                f"backend={self.backend},"
                f"overlap={'on' if self.overlap else 'off'}")

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PlanKey":
        try:
            return cls(m=int(data["m"]), n=int(data["n"]),
                       k=int(data["k"]), ng=int(data["ng"]),
                       backend=str(data["backend"]),
                       overlap=bool(data["overlap"]))
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"malformed plan key {data!r}: {exc}") from None


@dataclass
class TunePlan:
    """One accepted tuning plan (see the module docstring)."""

    key: PlanKey
    knobs: Dict[str, int]
    seed: int
    baseline_elapsed: float
    tuned_elapsed: float
    model_fingerprint: str
    #: One entry per candidate evaluation, in search order:
    #: ``{"step", "stage", "knobs", "elapsed", "accepted"}``.
    trace: List[Dict[str, Any]] = field(default_factory=list)
    #: True once the plan passed the race sanitizer at its knobs.
    race_checked: bool = False
    #: Evaluation context that is not part of the key (p, q, ...).
    context: Dict[str, Any] = field(default_factory=dict)
    schema: str = PLAN_SCHEMA

    def __post_init__(self) -> None:
        if self.schema != PLAN_SCHEMA:
            raise ConfigurationError(
                f"unsupported plan schema {self.schema!r}; expected "
                f"{PLAN_SCHEMA!r}")
        if not self.knobs:
            raise ConfigurationError("a plan must set at least one knob")
        for name, value in self.knobs.items():
            if not isinstance(value, (int, float)) \
                    or isinstance(value, bool):
                raise ConfigurationError(
                    f"plan knob {name!r} must be numeric, got {value!r}")
        if self.tuned_elapsed > self.baseline_elapsed:
            raise ConfigurationError(
                f"plan regresses the modeled clock: tuned "
                f"{self.tuned_elapsed:.6g}s > baseline "
                f"{self.baseline_elapsed:.6g}s")

    @property
    def improvement(self) -> float:
        """Fractional modeled-elapsed reduction vs the default plan."""
        if self.baseline_elapsed <= 0:
            return 0.0
        return 1.0 - self.tuned_elapsed / self.baseline_elapsed

    @property
    def evaluations(self) -> int:
        return len(self.trace)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": self.schema,
            "key": self.key.to_dict(),
            "knobs": dict(self.knobs),
            "seed": self.seed,
            "baseline_elapsed": self.baseline_elapsed,
            "tuned_elapsed": self.tuned_elapsed,
            "improvement": self.improvement,
            "model_fingerprint": self.model_fingerprint,
            "race_checked": self.race_checked,
            "context": dict(self.context),
            "trace": [dict(step) for step in self.trace],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=1, sort_keys=True) + "\n"

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TunePlan":
        if not isinstance(data, Mapping):
            raise ConfigurationError("plan artifact is not a JSON object")
        schema = data.get("schema")
        if schema != PLAN_SCHEMA:
            raise ConfigurationError(
                f"unsupported plan schema {schema!r}; expected "
                f"{PLAN_SCHEMA!r}")
        try:
            return cls(
                key=PlanKey.from_dict(data["key"]),
                knobs={str(k): v for k, v in dict(data["knobs"]).items()},
                seed=int(data["seed"]),
                baseline_elapsed=float(data["baseline_elapsed"]),
                tuned_elapsed=float(data["tuned_elapsed"]),
                model_fingerprint=str(data["model_fingerprint"]),
                trace=[dict(s) for s in data.get("trace", [])],
                race_checked=bool(data.get("race_checked", False)),
                context=dict(data.get("context", {})),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"malformed plan artifact: {exc}") from None


def load_plan_file(path: str) -> TunePlan:
    """Read and validate a plan artifact from ``path``."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except OSError as exc:
        raise ConfigurationError(
            f"cannot read plan {path}: {exc}") from None
    except json.JSONDecodeError as exc:
        raise ConfigurationError(
            f"malformed JSON in plan {path}: {exc}") from None
    return TunePlan.from_dict(data)


def coerce_plan_knobs(plan: Union[TunePlan, Mapping[str, int], str],
                      allowed: Optional[Sequence[str]] = None
                      ) -> Dict[str, int]:
    """Normalize a plan reference into a knob dict.

    ``plan`` may be a :class:`TunePlan`, a bare ``{knob: value}``
    mapping, or a path to a plan artifact.  With ``allowed`` the knobs
    are filtered to that set and an empty result is an error (the plan
    does not apply to the target at all); without it every knob passes
    through.
    """
    if isinstance(plan, TunePlan):
        knobs: Dict[str, Any] = dict(plan.knobs)
    elif isinstance(plan, str):
        knobs = dict(load_plan_file(plan).knobs)
    elif isinstance(plan, Mapping):
        knobs = dict(plan)
    else:
        raise ConfigurationError(
            f"cannot interpret {type(plan).__name__} as a plan; pass a "
            f"TunePlan, a knob mapping, or a plan-artifact path")
    for name, value in knobs.items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ConfigurationError(
                f"plan knob {name!r} must be numeric, got {value!r}")
    if allowed is not None:
        knobs = {k: v for k, v in knobs.items() if k in set(allowed)}
        if not knobs:
            raise ConfigurationError(
                f"plan sets none of the target's knobs {tuple(allowed)}")
    return knobs


def apply_plan_to_config(config):
    """Return ``config`` with any plan-provided fields it owns applied.

    Generic ``plan=`` path for the frozen config dataclasses
    (:class:`repro.config.SamplingConfig`,
    :class:`repro.config.AdaptiveConfig`,
    :class:`repro.serve.service.ServeConfig`): when the config carries a
    ``plan`` reference, knobs whose names match the config's own fields
    are applied via :func:`dataclasses.replace` (re-running the
    config's validation); all other knobs are left for the executor's
    :meth:`~repro.gpu.multigpu.MultiGPUExecutor.apply_plan`.  Configs
    without a plan pass through unchanged.
    """
    plan_ref = getattr(config, "plan", None)
    if plan_ref is None:
        return config
    knobs = coerce_plan_knobs(plan_ref)
    own = {f.name for f in fields(config)} - {"plan", "auto_tune"}
    updates = {k: v for k, v in knobs.items() if k in own}
    if not updates:
        return config
    return replace(config, **updates)

"""repro.tune: critical-path autotuner with reproducible plan artifacts.

ROADMAP item 5: let the performance model optimize itself.  The tuner
searches the declared schedule-knob space
(:data:`~repro.tune.space.MULTIGPU_SPACE`) against the modeled clock,
emits a versioned JSON plan artifact (:class:`~repro.tune.plan.TunePlan`),
and caches accepted plans — race-checked, never worse than the default
schedule — in an LRU + on-disk plan cache keyed by ``(matrix shape, k,
ng, backend, overlap)``.  Tuned knobs flow into real runs through the
``plan=`` / ``auto_tune=`` fields of :class:`repro.config.SamplingConfig`
and friends, or directly via
:meth:`repro.gpu.multigpu.MultiGPUExecutor.apply_plan`.

CLI: ``repro-bench tune {search,show,apply,clear-cache}``.
"""

from .cache import (DEFAULT_CACHE_DIR, clear_plan_cache, lookup_plan,
                    model_fingerprint, plan_cache_info, store_plan)
from .engine import evaluate_candidate, get_plan, tune
from .plan import (PLAN_SCHEMA, PlanKey, TunePlan, apply_plan_to_config,
                   coerce_plan_knobs, load_plan_file)
from .space import MULTIGPU_SPACE, Param, ParamSpace

__all__ = [
    "PLAN_SCHEMA", "PlanKey", "TunePlan", "load_plan_file",
    "coerce_plan_knobs", "apply_plan_to_config",
    "Param", "ParamSpace", "MULTIGPU_SPACE",
    "DEFAULT_CACHE_DIR", "model_fingerprint", "plan_cache_info",
    "clear_plan_cache", "store_plan", "lookup_plan",
    "evaluate_candidate", "tune", "get_plan",
]

"""Probabilistic error estimation (the paper's equation (4)).

The adaptive scheme stops on the estimate
``eps_tilde = ||Omega (A - A B^T B)||`` computed from a fresh Gaussian
block of ``l_inc`` rows.  Section 3 states the guarantee

    ``||A - A B^T B|| <= c_ad sqrt(2/pi) eps_tilde``

holding with probability ``1 - min(m, n) c_ad^{-l_inc}`` for any chosen
constant ``c_ad > 1`` (Halko-Martinsson-Tropp [9], the norm-estimation
lemma), and Section 10 inverts it: for a target failure probability
``gamma``, ``c_ad = (gamma / min(m, n))^{-1 / l_inc}`` — so a larger
increment makes the certified bound *less pessimistic*, one of the two
sides of the l_inc trade-off plotted in Figure 16.

This module exposes those relations plus a convenience that turns an
adaptive run's final estimate into a certified bound.
"""

from __future__ import annotations

import math
from typing import Tuple

from ..errors import ConfigurationError

__all__ = ["failure_probability", "bound_constant", "certified_bound",
           "estimate_quality_factor"]


def failure_probability(c_ad: float, l_inc: int, m: int, n: int) -> float:
    """Probability that the eq. (4) bound fails: ``min(m,n) c_ad^{-l_inc}``
    (clamped to [0, 1])."""
    if c_ad <= 1.0:
        raise ConfigurationError(f"c_ad must exceed 1, got {c_ad}")
    if l_inc < 1 or m < 1 or n < 1:
        raise ConfigurationError("l_inc, m, n must be >= 1")
    return min(1.0, min(m, n) * c_ad ** (-l_inc))


def bound_constant(gamma: float, l_inc: int, m: int, n: int) -> float:
    """The constant ``c_ad`` achieving failure probability ``gamma``:
    ``(gamma / min(m, n))^{-1 / l_inc}`` (Section 10)."""
    if not 0.0 < gamma < 1.0:
        raise ConfigurationError(f"gamma must be in (0, 1), got {gamma}")
    if l_inc < 1 or m < 1 or n < 1:
        raise ConfigurationError("l_inc, m, n must be >= 1")
    ratio = gamma / min(m, n)
    if ratio >= 1.0:
        return 1.0 + 1e-12
    return ratio ** (-1.0 / l_inc)


def certified_bound(eps_tilde: float, l_inc: int, m: int, n: int,
                    gamma: float = 1e-6) -> Tuple[float, float]:
    """Turn a measured estimate into a certified error bound.

    Returns ``(bound, c_ad)`` where ``||A - A B^T B|| <= bound`` with
    probability at least ``1 - gamma``:
    ``bound = c_ad sqrt(2 / pi) eps_tilde``.
    """
    if eps_tilde < 0.0:
        raise ConfigurationError("eps_tilde must be non-negative")
    c_ad = bound_constant(gamma, l_inc, m, n)
    return c_ad * math.sqrt(2.0 / math.pi) * eps_tilde, c_ad


def estimate_quality_factor(l_inc: int, m: int, n: int,
                            gamma: float = 1e-6) -> float:
    """How pessimistic the certified bound is: the multiplier
    ``c_ad sqrt(2/pi)`` applied to the raw estimate.

    Section 10's observation in numbers: at m = 50 000 and gamma =
    1e-6, l_inc = 8 gives a ~23x multiplier while l_inc = 64 gives
    ~1.5x — "a larger value of the parameter l_inc decreases the
    constant c_ad, making the error estimate less pessimistic".
    """
    return bound_constant(gamma, l_inc, m, n) * math.sqrt(2.0 / math.pi)

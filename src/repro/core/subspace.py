"""Subspace comparison utilities.

Quality measures used throughout the tests and benches when comparing
a sampled subspace against the true dominant singular subspace:
principal angles, alignment scores, and captured energy.  Exposed as a
public API because downstream users evaluating the sampler on their own
data need exactly these diagnostics.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..analysis.annotations import allow_untimed_math
from ..backends import hostmath
from ..errors import ShapeError
from ..qr.utils import as_2d_float

__all__ = ["principal_angles", "subspace_alignment", "captured_energy"]


@allow_untimed_math("subspace diagnostics run on the host against "
                    "reference bases; never on the modeled device path")
def _orthonormal_basis(x: np.ndarray, rows: bool) -> np.ndarray:
    """Column-orthonormal basis of the span of ``x`` (rows or columns)."""
    x = as_2d_float(x, "x")
    mat = x.T if rows else x
    q, _ = hostmath.qr(mat)
    return q


@allow_untimed_math("Björck-Golub angles are a host-side quality "
                    "diagnostic, not a modeled kernel")
def principal_angles(u: np.ndarray, v: np.ndarray,
                     rows: bool = False) -> np.ndarray:
    """Principal angles (radians, ascending) between two subspaces.

    ``u`` and ``v`` span subspaces of a common ambient space with their
    columns (or rows, with ``rows=True``).  Computed from the singular
    values of ``Q_u^T Q_v`` clipped into [0, 1] (Björck-Golub).
    """
    qu = _orthonormal_basis(u, rows)
    qv = _orthonormal_basis(v, rows)
    if qu.shape[0] != qv.shape[0]:
        raise ShapeError(
            f"ambient dimension mismatch: {qu.shape[0]} vs {qv.shape[0]}")
    s = hostmath.svdvals(qu.T @ qv)
    s = np.clip(s, 0.0, 1.0)
    k = min(qu.shape[1], qv.shape[1])
    return np.sort(np.arccos(s[:k]))


def subspace_alignment(u: np.ndarray, v: np.ndarray,
                       rows: bool = False) -> float:
    """Mean squared cosine of the principal angles, in [0, 1].

    1.0 means one subspace contains the other; 0.0 means orthogonal.
    This is the score the power-iteration tests track (it must rise
    with ``q``).
    """
    angles = principal_angles(u, v, rows=rows)
    return float(np.mean(np.cos(angles) ** 2))


@allow_untimed_math("host-side quality diagnostic, not a modeled kernel")
def captured_energy(a: np.ndarray, basis: np.ndarray,
                    rows: bool = True) -> float:
    """Fraction of ``||A||_F^2`` captured by projecting onto ``basis``.

    With ``rows=True`` (the sampled matrix convention), ``basis`` holds
    orthonormal rows spanning a row subspace and the projection is
    ``A basis^T basis``.
    """
    a = as_2d_float(a, "a")
    q = _orthonormal_basis(basis, rows)
    if rows:
        proj = (a @ q) @ q.T
    else:
        proj = q @ (q.T @ a)
    total = float(hostmath.norm(a, ord="fro") ** 2)
    if total == 0.0:
        return 1.0
    return float(hostmath.norm(proj, ord="fro") ** 2) / total

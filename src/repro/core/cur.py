"""CUR decomposition via randomized pivot selection.

The paper motivates the HapMap experiment with CUR-style analyses
(references [6] Drineas-Mahoney-Muthukrishnan and [14]
Mahoney-Drineas): a low-rank factorization ``A ~= C U R`` whose factors
are *actual columns and rows of A*, so they stay interpretable (for
genotype data: actual SNPs and actual individuals).

This implementation composes the package's own kernels:

1. Column selection: Steps 1-2 of the randomized algorithm (sample
   ``B = Omega A``, truncated QP3 of ``B``) pick ``k`` columns —
   exactly the pivot set the paper's Figure 2b computes.
2. Row selection: the same procedure on ``A^T``.
3. Core: ``U = C^+ A R^+`` (the optimal core for fixed C, R), computed
   with two least-squares solves against the selected slabs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..analysis.annotations import allow_untimed_math
from ..backends import hostmath
from ..config import SamplingConfig
from ..errors import ShapeError, SymbolicExecutionError
from ..qr.utils import ensure_all_finite
from ..gpu.device import ArrayLike, NumpyExecutor, is_symbolic, shape_of
from .power import power_iterate
from .sampling import sample

__all__ = ["CURDecomposition", "cur_decomposition"]


@dataclass
class CURDecomposition:
    """``A ~= C U R`` with ``C = A[:, cols]`` and ``R = A[rows, :]``.

    Attributes
    ----------
    cols, rows:
        The selected column / row indices (length ``k``).
    c, u, r:
        The factors: ``m x k``, ``k x k``, ``k x n``.
    """

    cols: np.ndarray
    rows: np.ndarray
    c: np.ndarray
    u: np.ndarray
    r: np.ndarray

    @property
    def k(self) -> int:
        return int(self.cols.shape[0])

    @allow_untimed_math("host-side materialization for inspection; "
                        "never on the modeled device path")
    def approximation(self) -> np.ndarray:
        return self.c @ self.u @ self.r

    @allow_untimed_math("host-side diagnostic error norm")
    def residual(self, a: np.ndarray, relative: bool = True) -> float:
        err = hostmath.norm2(a - self.approximation())
        if relative:
            na = hostmath.norm2(a)
            return err / na if na > 0 else err
        return err


@allow_untimed_math("CUR core solve runs on the host: the paper's GPU "
                    "pipeline ends at the pivot selection, and LAPACK "
                    "lstsq has no kernel model")
def _core_factor(c: np.ndarray, a_np: np.ndarray,
                 r: np.ndarray) -> np.ndarray:
    """The least-squares-optimal core ``U = C^+ A R^+`` via two solves:
    ``X = C^+ A`` (k x n), then ``U = X R^+ = (R^+^T X^T)^T``."""
    x = hostmath.lstsq(c, a_np)
    u_t = hostmath.lstsq(r.T, x.T)
    return u_t.T


def _select_pivots(ex: NumpyExecutor, a: ArrayLike,
                   config: SamplingConfig) -> np.ndarray:
    """Steps 1-2 of Figure 2b: the first ``k`` QRCP pivots of the
    sampled matrix."""
    b = sample(ex, a, config.sample_size, kind=config.sampler)
    b, _ = power_iterate(ex, a, b, q=config.power_iterations,
                         scheme=config.orth,
                         reorthogonalize=config.reorthogonalize)
    _, _, perm = ex.qrcp_sampled(b, config.rank)
    return np.asarray(perm[: config.rank])


def cur_decomposition(a: ArrayLike, config: SamplingConfig,
                      executor: Optional[NumpyExecutor] = None,
                      check_finite: bool = True) -> CURDecomposition:
    """Rank-``k`` CUR decomposition by randomized QRCP pivoting.

    Both index sets come from the paper's own column-selection
    machinery (sampled QRCP), applied to ``A`` and ``A^T``; the core is
    the least-squares-optimal ``C^+ A R^+``.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.config import SamplingConfig
    >>> from repro.core.cur import cur_decomposition
    >>> rng = np.random.default_rng(0)
    >>> a = rng.standard_normal((200, 30)) @ rng.standard_normal((30, 90))
    >>> d = cur_decomposition(a, SamplingConfig(rank=30, seed=1))
    >>> d.residual(a) < 1e-8
    True
    """
    m, n = shape_of(a)
    config.validate_for(m, n)
    if check_finite:
        ensure_all_finite(a, "a")
    if is_symbolic(a):
        raise SymbolicExecutionError(
            "cur_decomposition needs numerical data")
    if config.rank > min(m, n):
        raise ShapeError(f"rank {config.rank} exceeds min(m, n)")
    ex = executor if executor is not None else NumpyExecutor(
        seed=config.seed, backend=config.backend)
    ex.bind(a)

    cols = _select_pivots(ex, a, config)
    # Row selection: the same algorithm on A^T (its "columns" are rows
    # of A).  The transpose view never copies for a NumPy input.
    rows = _select_pivots(ex, np.asarray(a).T, config)

    a_np = np.asarray(a)
    c = a_np[:, cols]
    r = a_np[rows, :]
    return CURDecomposition(cols=cols, rows=rows, c=c,
                            u=_core_factor(c, a_np, r), r=r)

"""Step 1 sampling operators: pruned Gaussian and full FFT (Section 4).

The sampling step ``B = Omega A`` conceptually factors as
``B = S Pi A`` — an ``m x m`` projection ``Pi`` followed by a random
row selection ``S``.  The *pruned* schemes never form the projected
``m x n`` matrix:

- **Pruned Gaussian** (the paper's focus): the selected rows of a
  Gaussian ``Pi`` are themselves Gaussian, so generate the ``l x m``
  ``Omega`` directly with the PRNG and apply one GEMM — ``O(l m n)``
  flops instead of ``O(m^2 n)``.
- **Full FFT**: transform ``A`` along the sampled dimension (padded to
  a power of two, as cuFFT prefers) and keep ``l`` random rows —
  ``O(m n log m)`` flops.  (cuFFT offers no pruned FFT, and neither do
  we: the paper makes the same restriction.)

:func:`full_gaussian_sample` exists for completeness/testing of the
full-vs-pruned cost claim; it is never the fast path.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..analysis.annotations import allow_untimed_math
from ..errors import ConfigurationError, ShapeError
from ..gpu.device import ArrayLike, NumpyExecutor, shape_of

__all__ = ["sample", "full_gaussian_sample"]


def sample(ex: NumpyExecutor, a: ArrayLike, l: int,
           kind: str = "gaussian") -> ArrayLike:
    """Draw the ``l x n`` sampled matrix ``B`` from ``A`` (Step 1).

    Parameters
    ----------
    ex:
        The executor carrying the PRNG and the timing model.
    a:
        The ``m x n`` input (real or symbolic).
    l:
        Total sampling dimension ``k + p``.
    kind:
        ``"gaussian"`` (pruned) or ``"fft"`` (full, row sampling).
    """
    m, n = shape_of(a)
    if l < 1:
        raise ConfigurationError(f"sample size must be >= 1, got {l}")
    if l > m:
        raise ShapeError(f"sample size {l} exceeds m = {m}")
    if kind == "gaussian":
        from ..gpu.device import is_symbolic
        omega = ex.prng_gaussian(l, m, symbolic=is_symbolic(a))
        return ex.sample_gemm(omega, a)
    if kind == "fft":
        return ex.fft_sample(a, l, axis="row")
    raise ConfigurationError(f"unknown sampler kind {kind!r}")


@allow_untimed_math("reference full-sampling path kept only to test "
                    "the pruned-vs-full cost claim; never the fast path")
def full_gaussian_sample(a: np.ndarray, l: int,
                         rng: Optional[np.random.Generator] = None
                         ) -> np.ndarray:
    """Reference *full* Gaussian sampling: form the ``m x m`` projected
    matrix ``Pi A``, then select ``l`` rows.

    Statistically identical to the pruned scheme (the selected rows of
    a Gaussian matrix are Gaussian) at ``O(m^2 n)`` cost — used only to
    test that equivalence and to demonstrate the pruning speedup.
    """
    rng = rng or np.random.default_rng()
    m, n = a.shape
    if l > m:
        raise ShapeError(f"sample size {l} exceeds m = {m}")
    pi = rng.standard_normal((m, m))
    projected = pi @ a
    rows = rng.choice(m, size=l, replace=False)
    return projected[rows, :]

"""The paper's contribution: randomized sampling for low-rank
approximation.

- :mod:`repro.core.lowrank` — result types and error measures.
- :mod:`repro.core.sampling` — the sampling operators (Step 1).
- :mod:`repro.core.power` — the POWER iteration (Figure 2a).
- :mod:`repro.core.random_sampling` — the fixed-rank algorithm
  (Figure 2b).
- :mod:`repro.core.adaptive` — the adaptive-``l`` fixed-accuracy scheme
  (Figure 3, Section 10).
"""

from .lowrank import LowRankFactors, spectral_error, best_rank_k_error
from .sampling import sample, full_gaussian_sample
from .power import power_iterate
from .random_sampling import random_sampling
from .adaptive import (AdaptiveResult, AdaptiveStep,
                       adaptive_sampling, estimate_rank)
from .svd import RandomizedSVD, randomized_svd
from .cur import CURDecomposition, cur_decomposition
from .estimator import (certified_bound, bound_constant,
                        failure_probability, estimate_quality_factor)
from .subspace import principal_angles, subspace_alignment, captured_energy
from .clustering import (clustering_accuracy, embed_columns,
                         cluster_columns, population_recovery_score)

__all__ = [
    "LowRankFactors",
    "spectral_error",
    "best_rank_k_error",
    "sample",
    "full_gaussian_sample",
    "power_iterate",
    "random_sampling",
    "AdaptiveResult",
    "AdaptiveStep",
    "adaptive_sampling",
    "estimate_rank",
    "RandomizedSVD",
    "randomized_svd",
    "CURDecomposition",
    "cur_decomposition",
    "certified_bound",
    "bound_constant",
    "failure_probability",
    "estimate_quality_factor",
    "principal_angles",
    "subspace_alignment",
    "captured_energy",
    "clustering_accuracy",
    "embed_columns",
    "cluster_columns",
    "population_recovery_score",
]

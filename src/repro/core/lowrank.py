"""Low-rank factorization results and error measures.

The algorithms produce ``A P ~= Q R`` (the paper's equation (1)):
``Q`` is ``m x k`` with orthonormal columns, ``R`` is ``k x n`` upper
trapezoidal *in pivoted column order*, and ``P`` is a column
permutation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Union

import numpy as np

from ..analysis.annotations import allow_untimed_math
from ..backends import hostmath
from ..errors import ShapeError, SymbolicExecutionError
from ..gpu.device import ArrayLike, is_symbolic
from ..gpu.trace import TimeLine

__all__ = ["LowRankFactors", "spectral_error", "best_rank_k_error"]


@allow_untimed_math("reference error measure computed on the host "
                    "(Figure 6); never on the modeled device path")
def spectral_error(a: np.ndarray, approx: np.ndarray,
                   relative: bool = True) -> float:
    """``||A - approx||_2`` (optionally over ``||A||_2``), the error
    norm of Figure 6."""
    if a.shape != approx.shape:
        raise ShapeError(f"shape mismatch: {a.shape} vs {approx.shape}")
    err = hostmath.norm2(a - approx)
    if relative:
        na = hostmath.norm2(a)
        return err / na if na > 0 else err
    return err


@allow_untimed_math("Eckart-Young reference optimum via host LAPACK; "
                    "a measurement yardstick, not a modeled kernel")
def best_rank_k_error(a: np.ndarray, k: int, relative: bool = True) -> float:
    """``sigma_{k+1}(A)`` — the optimal rank-``k`` spectral error
    (Eckart-Young), the floor every algorithm is judged against."""
    s = hostmath.svdvals(a)
    if k >= s.size:
        return 0.0
    err = float(s[k])
    if relative and s[0] > 0:
        return err / float(s[0])
    return err


@dataclass
class LowRankFactors:
    """Result of a rank-``k`` approximation ``A P ~= Q R``.

    Besides the factors, carries the modeled device time of the run
    (zero for the pure-NumPy executor) and the per-phase breakdown used
    by the Figure 11-15 benches.
    """

    q: ArrayLike
    r: ArrayLike
    perm: np.ndarray
    k: int
    sample_size: int
    power_iterations: int
    seconds: float = 0.0
    breakdown: Dict[str, float] = field(default_factory=dict)

    @property
    def symbolic(self) -> bool:
        """True when the run was shape-only (no numerical factors)."""
        return is_symbolic(self.q, self.r)

    def _require_real(self) -> None:
        if self.symbolic:
            raise SymbolicExecutionError(
                "this result came from a symbolic (timing-only) run; "
                "re-run with a real matrix for numerical factors")

    @allow_untimed_math("host-side materialization for inspection; "
                        "never on the modeled device path")
    def approximation(self) -> np.ndarray:
        """Rank-``k`` approximation of ``A`` in original column order."""
        self._require_real()
        qr = np.asarray(self.q) @ np.asarray(self.r)
        out = np.empty_like(qr)
        out[:, self.perm] = qr
        return out

    @allow_untimed_math("host-side diagnostic (Figure 6 error norm)")
    def residual(self, a: np.ndarray, relative: bool = True) -> float:
        """``||A P - Q R|| / ||A||`` — the Figure 6 error norm."""
        self._require_real()
        return spectral_error(a[:, self.perm],
                              np.asarray(self.q) @ np.asarray(self.r),
                              relative=relative)

    def suboptimality(self, a: np.ndarray) -> float:
        """Ratio of the achieved error to the Eckart-Young optimum
        ``sigma_{k+1}`` (1.0 means optimal)."""
        self._require_real()
        opt = best_rank_k_error(a, self.k, relative=True)
        err = self.residual(a, relative=True)
        return err / opt if opt > 0 else float("inf")

"""The POWER iteration of Figure 2a.

``q`` rounds of the normalized power method sharpen the sampled
subspace: the error constant improves from ``c(p, Omega)`` to
``c(p, Omega)^{1/(2q+1)}`` (Halko-Martinsson-Tropp [9], eq. in
Section 3).  Because the condition number of the iterated block grows
exponentially with ``q``, each application of ``A`` / ``A^T`` is
followed by orthogonalization: a block Gram-Schmidt (``BOrth``)
against the previously accepted basis plus an intra-block QR (CholQR
with one full reorthogonalization in the paper's experiments).

The iteration is written over an optional *previous basis* so the same
function serves the fixed-rank algorithm (no previous basis) and the
adaptive-``l`` scheme (new block orthogonalized against the accepted
subspace, Figure 3 line 7).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..analysis.annotations import shaped
from ..errors import ShapeError
from ..gpu.device import ArrayLike, NumpyExecutor, shape_of

__all__ = ["power_iterate"]


@shaped(params={"a": ("m", "n"), "b_new": ("l", "n"), "q": "q"})
def power_iterate(ex: NumpyExecutor, a: ArrayLike, b_new: ArrayLike,
                  q: int,
                  b_prev: Optional[ArrayLike] = None,
                  c_prev: Optional[ArrayLike] = None,
                  scheme: str = "cholqr2",
                  reorthogonalize: bool = True,
                  ) -> Tuple[ArrayLike, Optional[ArrayLike]]:
    """Run ``q`` power iterations on the new sampled block.

    Implements lines 2-13 of Figure 2a with the block split
    ``B = [B_prev; B_new]``:

    1. ``B_new <- BOrth(B_prev, B_new)``; ``B_new <- QR(B_new)``
    2. ``C_new <- B_new A^T``
    3. ``C_new <- BOrth(C_prev, C_new)``; ``C_new <- QR(C_new)``
    4. ``B_new <- C_new A``

    Parameters
    ----------
    ex:
        Executor (math + timing).
    a:
        The ``m x n`` input matrix.
    b_new:
        The freshly sampled ``l_new x n`` block.
    q:
        Number of iterations; ``q = 0`` returns ``(b_new, None)``
        untouched (Figure 2b then proceeds straight to QRCP).
    b_prev, c_prev:
        Previously accepted orthonormal bases (``l_prev x n`` and
        ``l_prev x m``) for the adaptive scheme; ``None`` for the
        fixed-rank problem.
    scheme, reorthogonalize:
        Intra-block orthogonalization kernel and whether ``BOrth``
        applies a second pass.

    Returns
    -------
    (b_new, c_new):
        The iterated row block and its ``A^T``-side companion
        (``None`` when ``q = 0``).
    """
    if q < 0:
        raise ShapeError(f"q must be >= 0, got {q}")
    m, n = shape_of(a)
    lb, nb = shape_of(b_new)
    if nb != n:
        raise ShapeError(f"B block has {nb} columns, expected n = {n}")
    if b_prev is not None and shape_of(b_prev)[1] != n:
        raise ShapeError("b_prev column count mismatch")
    if c_prev is not None and shape_of(c_prev)[1] != m:
        raise ShapeError("c_prev column count mismatch")

    c_new: Optional[ArrayLike] = None
    for _ in range(q):
        b_new = ex.block_orth_rows(b_prev, b_new, reorth=reorthogonalize)
        b_new = ex.orth_rows(b_new, scheme=scheme)
        c_new = ex.iter_gemm_at(b_new, a)
        c_new = ex.block_orth_rows(c_prev, c_new, reorth=reorthogonalize)
        c_new = ex.orth_rows(c_new, scheme=scheme)
        b_new = ex.iter_gemm_a(c_new, a)
    return b_new, c_new

"""Clustering-quality measures for low-rank approximations.

The paper's conclusion proposes evaluating approximation quality
through the application: "we will investigate other error measurements
(e.g., clustering errors) to better understand the quality of the
approximation computed by different algorithms."  For the HapMap
workload that measure is population recovery: embed the individuals
with the low-rank factors, cluster, and score the agreement with the
known populations.

This module provides that pipeline on top of any of the package's
factorizations (QR/SVD/CUR), using SciPy's k-means for the clustering
step and the optimal label matching for the score.
"""

from __future__ import annotations

from itertools import permutations
from typing import Optional, Union

import numpy as np
from scipy.cluster.vq import kmeans2
from scipy.optimize import linear_sum_assignment

from ..config import SamplingConfig
from ..errors import ShapeError
from .svd import randomized_svd

__all__ = ["clustering_accuracy", "embed_columns", "cluster_columns",
           "population_recovery_score"]


def clustering_accuracy(labels_true: np.ndarray,
                        labels_pred: np.ndarray) -> float:
    """Best label-matching agreement between two clusterings, in [0, 1].

    Uses the Hungarian algorithm on the contingency matrix, so it
    scales to many clusters (exhaustive permutation matching would
    explode past ~8).
    """
    labels_true = np.asarray(labels_true)
    labels_pred = np.asarray(labels_pred)
    if labels_true.shape != labels_pred.shape:
        raise ShapeError("label arrays must have equal length")
    kt = int(labels_true.max()) + 1
    kp = int(labels_pred.max()) + 1
    k = max(kt, kp)
    contingency = np.zeros((k, k))
    for t, p in zip(labels_true, labels_pred):
        contingency[int(t), int(p)] += 1
    rows, cols = linear_sum_assignment(-contingency)
    return float(contingency[rows, cols].sum() / labels_true.size)


def embed_columns(a: np.ndarray, rank: int,
                  config: Optional[SamplingConfig] = None,
                  center: bool = True) -> np.ndarray:
    """Low-dimensional embedding of the columns of ``A`` via the
    randomized SVD.

    Each column (e.g. an individual in the genotype workload) gets the
    ``rank`` coordinates ``sigma_i * v_i`` — its weights on the top
    right-singular vectors.

    Parameters
    ----------
    a:
        ``m x n`` data matrix.
    rank:
        Embedding dimension.
    config:
        Sampling parameters (rank is overridden); defaults to
        ``q = 2`` power iterations, which the noisy regimes need.
    center:
        Subtract the row means first (standard for PCA-style
        structure analysis).
    """
    a = np.asarray(a, dtype=np.float64)
    if a.ndim != 2:
        raise ShapeError("embed_columns needs a 2-D matrix")
    if center:
        a = a - a.mean(axis=1, keepdims=True)
    cfg = config if config is not None else SamplingConfig(
        rank=rank, oversampling=10, power_iterations=2, seed=0)
    if cfg.rank != rank:
        cfg = cfg.with_rank(rank)
    f = randomized_svd(a, cfg)
    return (f.vt * f.s[:, None]).T  # n x rank


def cluster_columns(a: np.ndarray, n_clusters: int, rank: int,
                    config: Optional[SamplingConfig] = None,
                    seed: int = 0,
                    center: bool = True) -> np.ndarray:
    """Cluster the columns of ``A`` in a rank-``rank`` embedding.

    Returns the predicted label per column.
    """
    if n_clusters < 2:
        raise ShapeError(f"need >= 2 clusters, got {n_clusters}")
    coords = embed_columns(a, rank, config=config, center=center)
    _, labels = kmeans2(coords, n_clusters, minit="++", seed=seed)
    return labels


def population_recovery_score(a: np.ndarray, labels_true: np.ndarray,
                              rank: int,
                              config: Optional[SamplingConfig] = None,
                              seed: int = 0) -> float:
    """End-to-end clustering quality of a low-rank approximation: embed
    the columns, k-means them, and score against the true labels.

    This is the quality measure that separates the hapmap regimes in
    the examples: the same Figure 6 residual (~0.4) supports ~100 %
    recovery with ``q = 2`` but much less without power iterations.
    """
    labels_true = np.asarray(labels_true)
    if labels_true.size != a.shape[1]:
        raise ShapeError("labels_true must have one entry per column")
    k = int(labels_true.max()) + 1
    pred = cluster_columns(a, n_clusters=k, rank=rank, config=config,
                           seed=seed)
    return clustering_accuracy(labels_true, pred)

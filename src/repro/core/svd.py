"""Randomized SVD on top of the sampled subspace.

The paper's randomized kernel stops at the pivoted form ``A P ~= Q R``
(eq. 1).  Many downstream applications (PCA, the HSS construction of
the paper's reference [22]) want the SVD form ``A ~= U S V^T`` instead;
this module provides it by the standard Halko-Martinsson-Tropp
post-processing of the same Stage-A subspace:

1. Stage A (shared with :func:`repro.core.random_sampling`): sample
   ``B = Omega A`` with ``q`` power iterations and orthonormalize its
   rows — ``B`` spans the dominant row space of ``A``.
2. Stage B: form the thin ``m x l`` matrix ``Y = A B^T``, factor
   ``Y = Q_y R_y`` (CholQR), SVD the small ``l x l`` factor ``R_y``,
   and truncate to rank ``k``::

       A ~= Y B = Q_y (R_y) B = (Q_y U_s) S (V_s^T B)

The small SVD runs on an ``l x l`` matrix (LAPACK via NumPy), so the
cost profile is identical to the fixed-rank algorithm: one extra GEMM
and an ``O(l^3)`` tail.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..analysis.annotations import allow_untimed_math
from ..backends import hostmath
from ..config import SamplingConfig
from ..errors import ShapeError, SymbolicExecutionError
from ..qr.utils import ensure_all_finite
from ..gpu.device import ArrayLike, NumpyExecutor, is_symbolic, shape_of
from .power import power_iterate
from .sampling import sample

__all__ = ["RandomizedSVD", "randomized_svd"]


@dataclass
class RandomizedSVD:
    """Rank-``k`` approximate SVD ``A ~= U diag(s) V^T``.

    ``U`` is ``m x k`` and ``V`` is ``n x k``, both with orthonormal
    columns; ``s`` holds the approximate singular values in descending
    order.
    """

    u: np.ndarray
    s: np.ndarray
    vt: np.ndarray
    sample_size: int
    power_iterations: int
    seconds: float = 0.0

    @property
    def k(self) -> int:
        return int(self.s.shape[0])

    @allow_untimed_math("host-side materialization for inspection; "
                        "never on the modeled device path")
    def approximation(self) -> np.ndarray:
        """Materialize the rank-``k`` approximation."""
        return (self.u * self.s) @ self.vt

    @allow_untimed_math("host-side diagnostic (Figure 6 error norm)")
    def residual(self, a: np.ndarray, relative: bool = True) -> float:
        """Spectral-norm approximation error."""
        err = hostmath.norm2(a - self.approximation())
        if relative:
            na = hostmath.norm2(a)
            return err / na if na > 0 else err
        return err


def randomized_svd(a: ArrayLike, config: SamplingConfig,
                   executor: Optional[NumpyExecutor] = None,
                   check_finite: bool = True) -> RandomizedSVD:
    """Rank-``k`` randomized SVD of an ``m x n`` matrix.

    Uses the same sampling/power-iteration machinery (and hence the
    same modeled GPU cost profile) as
    :func:`repro.core.random_sampling.random_sampling`.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.config import SamplingConfig
    >>> from repro.core.svd import randomized_svd
    >>> rng = np.random.default_rng(0)
    >>> a = rng.standard_normal((300, 40)) @ rng.standard_normal((40, 80))
    >>> f = randomized_svd(a, SamplingConfig(rank=40, seed=1))
    >>> f.residual(a) < 1e-8
    True
    """
    m, n = shape_of(a)
    config.validate_for(m, n)
    if check_finite:
        ensure_all_finite(a, "a")
    if is_symbolic(a):
        raise SymbolicExecutionError(
            "randomized_svd needs numerical data (the small SVD is "
            "value-dependent); use random_sampling for timing sweeps")
    ex = executor if executor is not None else NumpyExecutor(
        seed=config.seed, backend=config.backend)
    ex.bind(a)
    l, k = config.sample_size, config.rank

    # Stage A: sampled row-space basis.
    b = sample(ex, a, l, kind=config.sampler)
    b, _ = power_iterate(ex, a, b, q=config.power_iterations,
                         scheme=config.orth,
                         reorthogonalize=config.reorthogonalize)
    b = ex.orth_rows(b, scheme=config.orth, phase="orth_iter")

    # Stage B: project, factor, small SVD — every step charged through
    # the executor so the modeled cost profile stays faithful.
    y = ex.iter_gemm_at(b, a).T          # Y = A B^T  (m x l)
    qy, ry = ex.qr_selected(np.ascontiguousarray(y), scheme="cholqr2")
    u_s, s, vt_s = ex.svd_small(ry, phase="other")
    u = np.asarray(ex.gemm(qy, u_s[:, :k], phase="other"))
    vt = np.asarray(ex.gemm(vt_s[:k, :], b, phase="other"))
    return RandomizedSVD(u=u, s=s[:k], vt=vt, sample_size=l,
                         power_iterations=config.power_iterations,
                         seconds=ex.seconds)

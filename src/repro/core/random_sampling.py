"""The fixed-rank randomized sampling algorithm (Figure 2b).

Given an ``m x n`` matrix ``A`` and a target rank ``k``, compute
``A P ~= Q R`` in three steps:

1. **Sampling**: ``B = Omega A`` with an ``l x m`` Gaussian (or
   subsampled-FFT) matrix, ``l = k + p``; optionally ``q`` power
   iterations with re-orthogonalization.
2. **QRCP** of the small ``l x n`` sampled matrix: ``B P ~= Q_hat
   (R_hat_{1:k}  R_hat_{k+1:n})`` — this selects the ``k`` pivot
   columns and the coupling ``T = R_hat_{1:k}^{-1} R_hat_{k+1:n}``.
3. **QR** of the selected columns ``A P_{1:k} = Q R_bar``; then
   ``R = R_bar [I  T]``.

The function is executor-polymorphic: pass nothing for pure NumPy,
a :class:`repro.gpu.GPUExecutor` for a timed single-GPU run, or a
:class:`repro.gpu.MultiGPUExecutor` for the Figure 15 runtime.  With a
symbolic input (:class:`repro.gpu.SymArray`) only the modeled clock
advances — that is how the paper-scale performance sweeps run.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..analysis.annotations import shaped
from ..config import SamplingConfig
from ..errors import ShapeError
from ..qr.utils import ensure_all_finite
from ..gpu.device import ArrayLike, NumpyExecutor, shape_of
from .lowrank import LowRankFactors
from .power import power_iterate
from .sampling import sample

__all__ = ["random_sampling"]


def _apply_tuning(ex, config, m: int, n: int) -> None:
    """Route the config's ``plan=`` / ``auto_tune=`` knobs onto the
    executor before any work is submitted.

    Schedule knobs only exist on the multi-GPU executor; on executors
    without :meth:`~repro.gpu.multigpu.MultiGPUExecutor.apply_plan` an
    explicit ``plan=`` is a configuration error while ``auto_tune`` is
    a quiet no-op (a single-device run has nothing to tune).  Knobs
    never change the host math — tuned and default runs are
    bit-identical — so this hook is timing-only.
    """
    plan = getattr(config, "plan", None)
    auto = bool(getattr(config, "auto_tune", False))
    if plan is None and not auto:
        return
    if not hasattr(ex, "apply_plan"):
        if auto:
            return
        from ..errors import ConfigurationError
        raise ConfigurationError(
            "config.plan tunes the multi-GPU stream schedule; the "
            f"{type(ex).__name__} executor has no tunable knobs")
    if plan is not None:
        ex.apply_plan(plan)
        return
    from ..tune import PlanKey, get_plan
    key = PlanKey(m=m, n=n, k=config.rank, ng=ex.ng,
                  backend=ex.backend.name, overlap=ex.overlap)
    ex.apply_plan(get_plan(key, p=config.oversampling,
                           q=config.power_iterations,
                           spec=ex.device.spec, cpu=ex.cpu))


@shaped(params={"a": ("m", "n")})
def random_sampling(a: ArrayLike, config: SamplingConfig,
                    executor: Optional[NumpyExecutor] = None,
                    check_finite: bool = True,
                    presampled: Optional[ArrayLike] = None
                    ) -> LowRankFactors:
    """Compute a rank-``k`` approximation ``A P ~= Q R`` by random
    sampling.

    Parameters
    ----------
    a:
        The ``m x n`` input matrix (NumPy array, or
        :class:`repro.gpu.SymArray` for a timing-only run).
    config:
        Algorithm parameters; see :class:`repro.config.SamplingConfig`.
    executor:
        Execution backend.  Defaults to a fresh pure-NumPy executor
        seeded from ``config.seed``.
    check_finite:
        Reject NaN/Inf inputs up front (disable on hot paths).
    presampled:
        An externally computed ``l x n`` sampled matrix ``B`` replacing
        Step 1's draw-and-GEMM.  This is the continuous-batching hook:
        :mod:`repro.serve` coalesces the ``Omega A`` products of
        compatible concurrent requests into one stacked GEMM and feeds
        each request its slice here, leaving Steps 2-3 untouched — the
        caller is responsible for having drawn ``Omega`` exactly as a
        solo run would (same seed, same executor PRNG stream) so
        results stay bit-identical.

    Returns
    -------
    :class:`repro.core.lowrank.LowRankFactors`
        The factors plus the modeled run time and per-phase breakdown.

    Examples
    --------
    >>> import numpy as np
    >>> from repro import random_sampling, SamplingConfig
    >>> rng = np.random.default_rng(0)
    >>> a = rng.standard_normal((500, 30)) @ rng.standard_normal((30, 60))
    >>> f = random_sampling(a, SamplingConfig(rank=30, seed=1))
    >>> f.residual(a) < 1e-8
    True
    """
    m, n = shape_of(a)
    config.validate_for(m, n)
    if check_finite:
        ensure_all_finite(a, "a")
    ex = executor if executor is not None else NumpyExecutor(
        seed=config.seed, backend=config.backend)
    ex.bind(a)
    _apply_tuning(ex, config, m, n)

    l = config.sample_size
    k = config.rank
    if k > l:
        raise ShapeError(f"rank {k} exceeds sample size {l}")

    # --- Step 1: sampling (+ power iterations) --------------------------
    if presampled is not None:
        bl, bn = shape_of(presampled)
        if (bl, bn) != (l, n):
            raise ShapeError(
                f"presampled B is {bl} x {bn}; config expects "
                f"l x n = {l} x {n}")
        b = presampled
    else:
        b = sample(ex, a, l, kind=config.sampler)
    b, _ = power_iterate(ex, a, b, q=config.power_iterations,
                         scheme=config.orth,
                         reorthogonalize=config.reorthogonalize)

    # --- Step 2: QRCP of the sampled matrix -----------------------------
    _qhat, rhat, perm = ex.qrcp_sampled(b, k)

    # --- Step 3: QR of the selected columns -----------------------------
    ap = ex.take_columns(a, perm[:k])
    qfac, rbar = ex.qr_selected(ap, scheme="cholqr2")
    if n > k:
        t = ex.solve_upper(rhat[:, :k], rhat[:, k:])
        r = ex.assemble_r(rbar, t)
    else:
        r = rbar

    return LowRankFactors(
        q=qfac,
        r=r,
        perm=np.asarray(perm),
        k=k,
        sample_size=l,
        power_iterations=config.power_iterations,
        seconds=ex.seconds,
        breakdown=dict(ex.timeline.breakdown()),
    )

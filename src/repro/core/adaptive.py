"""The adaptive-``l`` scheme for the fixed-accuracy problem (Figure 3).

Instead of a user-chosen rank, the caller supplies a tolerance ``eps``
on ``||A - A B^T B||``; the sampled subspace is grown by ``l_inc``
orthonormal vectors per step until the probabilistic error estimate
drops below ``eps``.  Per step:

1. *Expand*: run the power iteration on the pending block against the
   accepted basis, then orthogonalize it into the basis
   (``BOrth`` + QR — Figure 3 lines 7-8).  [The paper's pseudocode
   reaches the BOrth through POWER; for ``q = 0`` we still BOrth the
   block before its QR, otherwise the accumulated basis would not be
   orthonormal and the estimate of line 15 would be meaningless.]
2. *Generate*: choose the next increment ``l_inc = f(l, l_inc)``
   (static, or the Section-10 interpolation rule), draw a fresh
   Gaussian block ``B_+ = Omega A`` (line 13).
3. *Estimate*: ``eps_tilde = ||B_+ - B_+ B_{1:l}^T B_{1:l}||`` — since
   ``B_+ = Omega A``, this equals ``||Omega (A - A B^T B)||``, the
   estimator of eq. (4), satisfying ``||A - A B^T B|| <= c_ad
   sqrt(2/pi) eps_tilde`` with high probability.

The estimate is pessimistic (Figure 16 shows it one to two orders of
magnitude above the actual error), so the scheme generally oversamples;
Section 10's trade-off between small ``l_inc`` (tight subspace, slow
kernels) and large ``l_inc`` (fast kernels, overshoot) is what the
Figure 16/17 benches sweep.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..analysis.annotations import allow_untimed_math
from ..backends import hostmath
from ..config import AdaptiveConfig
from ..errors import ConvergenceError
from ..qr.utils import ensure_all_finite
from ..gpu.device import ArrayLike, NumpyExecutor, is_symbolic, shape_of
from .power import power_iterate
from .sampling import sample

#: After the new block is orthonormalized, its unit rows are projected
#: against the basis once more; rows whose norm collapses below this
#: (the DGKS "twice is enough" criterion) were round-off residue of
#: directions already in the span and are dropped — normalizing them
#: would destroy the basis orthogonality and blow up the estimator.
_DEGENERATE_ROW_TOL = 0.5

__all__ = ["AdaptiveStep", "AdaptiveResult", "adaptive_sampling",
           "estimate_rank"]

#: Hard bounds on the interpolated increment.
_MIN_INC = 4
_MAX_INC = 256


@dataclass(frozen=True)
class AdaptiveStep:
    """One iteration of the adaptive scheme (one point of Figure 16/17).

    Attributes
    ----------
    subspace_size:
        Accepted basis size ``l`` *after* this step's expansion.
    increment:
        How many vectors were added this step.
    error_estimate:
        ``eps_tilde`` measured after the expansion (with a fresh block).
    seconds:
        Modeled device seconds elapsed since the start of the run.
    estimator_rows:
        Size of the fresh Gaussian block behind ``error_estimate`` —
        the ``l_inc`` entering the eq. (4) probability.
    """

    subspace_size: int
    increment: int
    error_estimate: float
    seconds: float
    estimator_rows: int = 0


@dataclass
class AdaptiveResult:
    """Output of :func:`adaptive_sampling`.

    ``basis`` holds the orthonormal rows ``B_{1:l}`` spanning the
    sampled subspace; feed it to Steps 2-3 of the fixed-rank algorithm
    (or use ``A ~= (A B^T) B`` directly) to extract factors.
    """

    basis: ArrayLike
    steps: List[AdaptiveStep] = field(default_factory=list)
    converged: bool = False
    seconds: float = 0.0
    shape: tuple = (0, 0)

    @property
    def subspace_size(self) -> int:
        return shape_of(self.basis)[0]

    def certified_bound(self, gamma: float = 1e-6) -> float:
        """A bound on ``||A - A B^T B||`` holding with probability at
        least ``1 - gamma`` (the paper's eq. (4)), computed from the
        final step's estimate.  See :mod:`repro.core.estimator`."""
        from .estimator import certified_bound as _cb
        if not self.steps:
            raise ConvergenceError("no steps recorded")
        last = self.steps[-1]
        m, n = self.shape
        bound, _ = _cb(last.error_estimate,
                       max(1, last.estimator_rows), m, n, gamma=gamma)
        return bound

    @allow_untimed_math("post-hoc diagnostic against the true matrix; "
                        "never part of a modeled device run")
    def actual_error(self, a: np.ndarray, relative: bool = False) -> float:
        """``||A - A B^T B||_2`` — the dashed "actual error" line of
        Figure 16."""
        b = np.asarray(self.basis)
        resid = a - (a @ b.T) @ b
        err = hostmath.norm2(resid)
        if relative:
            na = hostmath.norm2(a)
            return err / na if na > 0 else err
        return err


def _next_increment(cfg: AdaptiveConfig, history: List[AdaptiveStep],
                    current_inc: int) -> int:
    """The step rule ``f(l, l_inc)``.

    ``static`` returns ``l_inc`` unchanged.  ``interpolate`` fits a
    line through the last two ``(l, log eps_tilde)`` points and sizes
    the next increment to land on the tolerance (Section 10's "simple
    linear interpolation of the previous two steps"), clamped to
    [_MIN_INC, _MAX_INC].
    """
    if cfg.step_rule == "static" or len(history) < 2:
        # f(l, inc) = l_inc: only the very first block uses l_init.
        return cfg.l_inc
    s0, s1 = history[-2], history[-1]
    e0, e1 = s0.error_estimate, s1.error_estimate
    if not (e0 > 0 and e1 > 0) or e1 >= e0:
        return current_inc  # no usable decay slope; keep the step
    slope = (math.log(e1) - math.log(e0)) / (s1.subspace_size
                                             - s0.subspace_size)
    needed = (math.log(cfg.tolerance) - math.log(e1)) / slope
    # Grow at most 4x per step: early slopes are noisy, and one huge
    # extrapolated jump defeats the point of adapting.
    ceiling = min(_MAX_INC, 4 * current_inc)
    return int(min(ceiling, max(_MIN_INC, math.ceil(needed))))


def estimate_rank(a: ArrayLike, tolerance: float,
                  executor: Optional[NumpyExecutor] = None,
                  l_inc: int = 16, seed: Optional[int] = 0) -> int:
    """Estimate the numerical rank of ``A`` at a given tolerance.

    Convenience wrapper over the adaptive scheme: grows the sampled
    subspace until the probabilistic error estimate drops below
    ``tolerance`` and returns the subspace size — an upper estimate of
    the rank at that accuracy (the estimator's pessimism means it never
    understates the rank, cf. Figure 16).
    """
    if tolerance <= 0:
        raise ConvergenceError("tolerance must be positive")
    cfg = AdaptiveConfig(tolerance=tolerance, l_init=min(8, l_inc),
                         l_inc=l_inc, step_rule="interpolate", seed=seed)
    res = adaptive_sampling(a, cfg, executor=executor)
    return res.subspace_size


def adaptive_sampling(a: ArrayLike, config: AdaptiveConfig,
                      executor: Optional[NumpyExecutor] = None,
                      check_finite: bool = True) -> AdaptiveResult:
    """Grow a sampled subspace until the error estimate meets the
    tolerance (the fixed-accuracy problem, Figure 3).

    Parameters
    ----------
    a:
        The ``m x n`` input matrix (must be a real array: the stopping
        rule needs numerical error estimates, so symbolic runs raise
        :class:`repro.errors.SymbolicExecutionError`).
    config:
        See :class:`repro.config.AdaptiveConfig`.
    executor:
        Execution backend (timed or plain); defaults to pure NumPy.

    Returns
    -------
    :class:`AdaptiveResult` with the orthonormal basis, the per-step
    convergence history (Figures 16/17), and the modeled time.

    Raises
    ------
    repro.errors.ConvergenceError
        When ``max_subspace`` (default ``min(m, n)``) is reached before
        the estimate meets the tolerance; the partial history rides on
        the exception.
    """
    m, n = shape_of(a)
    if check_finite:
        ensure_all_finite(a, "a")
    if config.plan is not None:
        # Config-owned knobs (l_inc) come from the plan artifact;
        # executor schedule knobs are applied below.  Re-runs the
        # config validation, so a bad plan value fails loudly here.
        from ..tune import apply_plan_to_config
        config = apply_plan_to_config(config)
    ex = executor if executor is not None else NumpyExecutor(
        seed=config.seed, backend=config.backend)
    ex.bind(a)
    if config.plan is not None and hasattr(ex, "apply_plan"):
        from ..tune import coerce_plan_knobs
        schedule_knobs = {
            k: v for k, v in coerce_plan_knobs(config.plan).items()
            if k in getattr(ex, "TUNABLE_KNOBS", ())}
        if schedule_knobs:
            ex.apply_plan(schedule_knobs)
    if config.auto_tune and hasattr(ex, "apply_plan"):
        # Adaptive runs have no fixed k; the plan key uses the initial
        # subspace size as the rank proxy (the growth steps reuse the
        # same stream schedule).
        from ..tune import PlanKey, get_plan
        key = PlanKey(m=m, n=n, k=config.l_init, ng=ex.ng,
                      backend=ex.backend.name, overlap=ex.overlap)
        ex.apply_plan(get_plan(key, p=config.l_inc,
                               q=config.power_iterations,
                               spec=ex.device.spec, cpu=ex.cpu))
    cap = config.max_subspace if config.max_subspace is not None \
        else min(m, n)

    steps: List[AdaptiveStep] = []
    basis: Optional[ArrayLike] = None   # accepted B_{1:l}
    c_basis: Optional[ArrayLike] = None  # companion C_{1:l} (q > 0)
    l = 0
    inc = config.l_init
    t0 = ex.seconds

    # Line 2-3: initial pending block.
    pending = sample(ex, a, inc, kind="gaussian")

    while True:
        # --- expand the subspace with the pending block (lines 6-9) ----
        new_b, new_c = power_iterate(
            ex, a, pending, q=config.power_iterations,
            b_prev=basis, c_prev=c_basis,
            scheme=config.orth, reorthogonalize=config.reorthogonalize)
        new_b = ex.block_orth_rows(basis, new_b,
                                   reorth=config.reorthogonalize)
        new_b = ex.orth_rows(new_b, scheme=config.orth)
        if basis is not None and not is_symbolic(new_b):
            # DGKS guard: project the now-unit rows against the basis
            # once more; genuine new directions keep norm ~1, round-off
            # residue of exhausted directions collapses and is dropped.
            w2 = ex.block_orth_rows(basis, new_b,
                                    reorth=config.reorthogonalize)
            norms = ex.row_norms(w2, phase="orth_iter")
            keep = norms > _DEGENERATE_ROW_TOL
            if not np.all(keep):
                w2 = np.asarray(w2)[keep, :]
                if new_c is not None:
                    new_c = np.asarray(new_c)[keep, :]
            if w2.shape[0] == 0:
                raise ConvergenceError(
                    "sampled subspace exhausted the numerical range of A "
                    f"at l = {l} with eps_tilde above the tolerance "
                    f"{config.tolerance:.3e}", history=steps)
            new_b = ex.orth_rows(w2, scheme=config.orth)
        added = shape_of(new_b)[0]
        basis = new_b if basis is None else ex.vstack([basis, new_b])
        if new_c is not None:
            c_basis = new_c if c_basis is None \
                else ex.vstack([c_basis, new_c])
        l += added

        # --- generate fresh vectors (lines 11-13) -----------------------
        inc = _next_increment(config, steps, inc)
        inc = min(inc, max(1, m - l))
        if l < cap:
            # Never overshoot the cap: the last block is shrunk so the
            # subspace can reach exactly `cap` (= full numerical rank
            # when cap = min(m, n)) before the scheme gives up.
            inc = min(inc, cap - l)
        pending = sample(ex, a, inc, kind="gaussian")

        # --- error estimate (line 15) -----------------------------------
        eps = ex.estimate_error(pending, basis)
        steps.append(AdaptiveStep(subspace_size=l, increment=added,
                                  error_estimate=eps,
                                  seconds=ex.seconds - t0,
                                  estimator_rows=shape_of(pending)[0]))
        if eps <= config.tolerance:
            return AdaptiveResult(basis=basis, steps=steps, converged=True,
                                  seconds=ex.seconds - t0, shape=(m, n))
        if l >= cap:
            raise ConvergenceError(
                f"adaptive scheme hit the subspace cap ({cap}) at "
                f"eps_tilde = {eps:.3e} > {config.tolerance:.3e}",
                history=steps)

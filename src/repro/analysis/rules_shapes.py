"""RS121-RS125: the symbolic shape & cost-consistency rule family.

RS121/RS123/RS124 are computed project-wide by
:class:`repro.analysis.shapes.ShapeAnalysis` (a forward abstract
interpretation over the symbolic shape lattice, sharing the symbol
table — and therefore the incremental cache, ``--jobs`` fan-out, SARIF
and baseline machinery — with the RS115-RS119 residency pass).  The
checkers here are thin per-file shims that replay the raw findings
through the ordinary noqa machinery, exactly like
:mod:`repro.analysis.rules_residency` does: ``# repro: noqa RS121`` at
the charge line behaves like any other suppression and RS113 still
notices when it goes stale.

RS122 and RS125 are ordinary per-file AST rules: race-annotation
completeness is a property of each ``submit`` call site, and async
hygiene is a property of each ``async def`` body.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set

from .engine import BaseChecker, register
from .findings import AnalysisFinding

__all__ = [
    "ChargedShapeMismatchChecker",
    "IncompleteRaceAnnotationChecker",
    "UnchargedBranchChecker",
    "AsymptoticDriftChecker",
    "AsyncHygieneChecker",
]


class _ShapeRuleChecker(BaseChecker):
    """Replay the shape pass's raw findings for one rule and file."""

    #: Tells the engine this rule needs the symbolic shape pass.
    requires_shapes = True

    def run(self) -> List[AnalysisFinding]:
        for raw in getattr(self.ctx, "project_findings", None) or []:
            if raw.rule != self.rule:
                continue
            if self.ctx.suppressed(self.rule, raw.line):
                continue
            self.findings.append(AnalysisFinding(
                rule=self.rule,
                path=self.ctx.relpath,
                line=raw.line,
                col=raw.col,
                message=raw.message,
                context=raw.context))
        return self.findings


@register
class ChargedShapeMismatchChecker(_ShapeRuleChecker):
    """RS121: charged-kernel shape mismatch.

    The ``(m, n, k)`` triple passed to ``gemm_seconds`` /
    ``gemm_flops`` / ``cholesky_seconds`` / ``_t_gemm`` must match the
    shape of a GEMM actually computed in the same function: for
    ``_mm(x, y)``, ``backend.gemm(x, y)`` or ``x @ y`` the legitimate
    triple is ``(rows(x), cols(y), cols(x))``, up to the multi-GPU
    ``local_rows`` split and stacked-batch ``sum(shape_of(o)[0] ...)``
    totals.  Fires only on *definite* mismatches between fully-resolved
    symbolic triples — an unknown dimension never convicts.  Also fires
    when a ``@shaped(returns=...)`` declaration is contradicted by the
    inferred return shape.
    """

    rule = "RS121"
    summary = ("charged kernel dimensions disagree with the operand "
               "shapes actually multiplied")


@register
class UnchargedBranchChecker(_ShapeRuleChecker):
    """RS123: uncharged or double-charged execution paths.

    Inside timed scopes (``repro/gpu/`` or anything importing
    ``repro.gpu.streams``): GEMM-class math that is reachable both with
    and without a preceding charge event (a ``_t_*`` hook, ``charge``,
    ``submit``/``submit_group`` or a charging helper), and conditionals
    whose both arms compute math while only one arm charges.  Either
    way some path's seconds never reach — or reach twice — the modeled
    timeline.
    """

    rule = "RS123"
    summary = ("math reachable on a path whose kernel charges differ "
               "from its sibling path")


@register
class AsymptoticDriftChecker(_ShapeRuleChecker):
    """RS124: charged totals drift from the Figure 5 closed forms.

    The executor's charge hooks are statically interpreted over the
    fixed-rank algorithm trace at two reference dimension points, and
    the per-phase flop totals are compared against the closed forms in
    ``perfmodel/costs.py`` (``gaussian_sampling_cost``,
    ``power_iteration_*_cost``, ``qrcp_sampled_cost``,
    ``qr_selected_cost``) to leading order.  A wrong coefficient or a
    transposed dimension in any charge site shifts a phase total by far
    more than the lower-order slack and fires here.
    """

    rule = "RS124"
    summary = ("per-phase charged flops drift from the Figure 5 "
               "closed-form costs beyond leading order")


# ---------------------------------------------------------------------------
# RS122: race-annotation completeness (per-file)
# ---------------------------------------------------------------------------

def _buffer_base(node: ast.expr) -> Optional[str]:
    """The logical-buffer family name of one ``reads=``/``writes=``
    element: ``"B_chunk[0]"`` -> ``B_chunk``, ``f"B_host[{j},g{d}]"``
    -> ``B_host``, ``"A"`` -> ``A``.  ``None`` means the element is
    dynamic with no literal prefix (a wildcard — it may name anything).
    """
    text: Optional[str] = None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        text = node.value
    elif isinstance(node, ast.JoinedStr):
        if node.values and isinstance(node.values[0], ast.Constant) \
                and isinstance(node.values[0].value, str):
            text = node.values[0].value
        else:
            return None
    else:
        return None
    for sep in ("[", "@"):
        if sep in text:
            text = text.split(sep, 1)[0]
    return text or None


def _buffer_elements(node: ast.expr) -> Optional[List[ast.expr]]:
    """Flatten a ``reads=``/``writes=`` expression into elements, or
    ``None`` when the list itself is dynamic (a forwarded variable, a
    comprehension over devices, a concatenation with one)."""
    if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
        return list(node.elts)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        left = _buffer_elements(node.left)
        right = _buffer_elements(node.right)
        if left is None or right is None:
            return None
        return left + right
    return None


def _is_stream_submit(node: ast.Call) -> bool:
    if not isinstance(node.func, ast.Attribute):
        return False
    if node.func.attr not in ("submit", "submit_group"):
        return False
    receiver = node.func.value
    return isinstance(receiver, ast.Attribute) \
        and receiver.attr == "streams"


@register
class IncompleteRaceAnnotationChecker(BaseChecker):
    """RS122: a stream submission the race sanitizer cannot order.

    The PR 5 race sanitizer orders kernels by the logical buffers they
    declare; a ``streams.submit``/``submit_group`` with no ``writes=``
    declaration (or an empty one) is invisible to it — every conflict
    with that kernel goes unchecked, which is exactly how a dropped
    declaration reintroduces the silent races the sanitizer exists to
    catch.  Additionally, a *derived* buffer read (``"B_chunk[0]"``,
    ``"R_bar@g1"`` — anything with a ``[``/``@`` suffix) must be
    produced by some declared write of the same family in the module;
    a read nothing covers means the declared DAG has a dangling edge.
    Dynamic buffer lists (forwarded parameters, per-device
    comprehensions, dynamic f-string prefixes) make the module *open*
    and disable the dangling-read check — only the per-site ``writes=``
    presence check remains.
    """

    rule = "RS122"
    summary = ("stream submission with no writes= declaration (or a "
               "derived buffer read no declared write produces)")

    def run(self) -> List[AnalysisFinding]:
        if not self._timed_scope():
            return self.findings
        submits = [node for node in ast.walk(self.ctx.tree)
                   if isinstance(node, ast.Call)
                   and _is_stream_submit(node)]
        if not submits:
            return self.findings

        open_module = False
        write_bases: Set[str] = set()
        reads: List[tuple] = []
        for node in submits:
            kwargs = {kw.arg: kw.value for kw in node.keywords if kw.arg}
            writes = kwargs.get("writes")
            if writes is None or (isinstance(writes, (ast.List, ast.Tuple,
                                                      ast.Set))
                                  and not writes.elts):
                self.emit(node,
                          f"{node.func.attr}() declares no writes= "
                          f"logical buffers; the race sanitizer cannot "
                          f"order this kernel against anything that "
                          f"touches its outputs")
                continue
            elements = _buffer_elements(writes)
            if elements is None:
                open_module = True
            else:
                for elt in elements:
                    base = _buffer_base(elt)
                    if base is None:
                        open_module = True
                    else:
                        write_bases.add(base)
            read_elements = _buffer_elements(kwargs.get("reads")) \
                if "reads" in kwargs else []
            if read_elements is None:
                open_module = True
            else:
                for elt in read_elements:
                    reads.append((elt, node))

        if open_module:
            return self.findings
        for elt, node in reads:
            if not (isinstance(elt, ast.Constant)
                    and isinstance(elt.value, str)):
                continue
            if "[" not in elt.value and "@" not in elt.value:
                continue  # plain input buffers may be produced upstream
            base = _buffer_base(elt)
            if base is not None and base not in write_bases:
                self.emit(elt,
                          f"read of derived buffer {elt.value!r} that no "
                          f"declared write of the {base!r} family "
                          f"produces; the race DAG has a dangling edge")
        return self.findings

    def _timed_scope(self) -> bool:
        if "repro/gpu/" in self.ctx.relpath:
            return True
        for node in ast.walk(self.ctx.tree):
            if isinstance(node, ast.Import):
                if any(a.name.startswith("repro.gpu.streams")
                       for a in node.names):
                    return True
            elif isinstance(node, ast.ImportFrom) and node.module:
                if node.module.startswith("repro.gpu.streams") \
                        or node.module == "repro.gpu":
                    return True
        return False


# ---------------------------------------------------------------------------
# RS125: async hygiene in the serve layer (per-file)
# ---------------------------------------------------------------------------

#: Call leaves that block the event loop outright.
_BLOCKING_LEAVES = {"run_jobs", "check_call", "check_output", "result"}
#: Dotted prefixes whose calls are synchronous by construction.
_BLOCKING_PREFIXES = ("time.sleep", "subprocess.", "np.linalg.",
                      "numpy.linalg.")


def _dotted(node: ast.expr) -> str:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


@register
class AsyncHygieneChecker(BaseChecker):
    """RS125: event-loop hazards in async code.

    Three shapes, all confined to files that define ``async def``
    coroutines (in practice the ``repro.serve`` layer):

    - a blocking call (``time.sleep``, ``subprocess.*``, ``run_jobs``,
      ``Future.result()``, ``Executor.shutdown(wait=True)``, raw
      ``np.linalg`` math) directly inside an ``async def`` body — it
      stalls every other request sharing the event loop; heavy work
      belongs behind ``loop.run_in_executor`` (nested ``def``/lambda
      bodies are exempt: that is exactly how the offload is written);
    - an un-awaited coroutine: a bare expression statement calling a
      same-file ``async def`` (or ``asyncio.sleep``) creates a
      coroutine object and silently drops it;
    - an unbounded ``asyncio.Queue()``: the serve layer bounds
      admission through ``ServeConfig``, so a queue with no ``maxsize``
      silently removes the backpressure those bounds exist to provide.
    """

    rule = "RS125"
    summary = ("async hygiene: blocking call in a coroutine, un-awaited "
               "coroutine, or unbounded asyncio.Queue")

    def run(self) -> List[AnalysisFinding]:
        async_defs = [node for node in ast.walk(self.ctx.tree)
                      if isinstance(node, ast.AsyncFunctionDef)]
        if not async_defs:
            return self.findings
        local_coroutines = {fn.name for fn in async_defs}
        for fn in async_defs:
            self._check_body(fn, local_coroutines)
        for node in ast.walk(self.ctx.tree):
            if isinstance(node, ast.Call) \
                    and _dotted(node.func) == "asyncio.Queue" \
                    and not node.args \
                    and not any(kw.arg == "maxsize"
                                for kw in node.keywords):
                self.emit(node,
                          "unbounded asyncio.Queue(): admission bounds "
                          "from ServeConfig never reach this queue, so "
                          "it grows without backpressure")
        return self.findings

    def _check_body(self, fn: ast.AsyncFunctionDef,
                    local_coroutines: Set[str]) -> None:
        for node in self._own_nodes(fn):
            if isinstance(node, ast.Expr) \
                    and isinstance(node.value, ast.Call):
                dotted = _dotted(node.value.func)
                leaf = dotted.rsplit(".", 1)[-1]
                if dotted in ("asyncio.sleep", "asyncio.gather") \
                        or (leaf in local_coroutines and "." not in dotted):
                    self.emit(node,
                              f"coroutine {dotted or leaf}(...) is never "
                              f"awaited: the call builds a coroutine "
                              f"object and drops it, so the work never "
                              f"runs")
                    continue
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            leaf = dotted.rsplit(".", 1)[-1] if dotted else ""
            blocking = leaf in _BLOCKING_LEAVES \
                or any(dotted.startswith(p) or dotted == p.rstrip(".")
                       for p in _BLOCKING_PREFIXES)
            if leaf == "shutdown" \
                    and any(kw.arg == "wait"
                            and isinstance(kw.value, ast.Constant)
                            and kw.value.value is True
                            for kw in node.keywords):
                blocking = True
            if blocking:
                self.emit(node,
                          f"blocking call {dotted or leaf}(...) inside "
                          f"async def {fn.name}: it stalls the event "
                          f"loop for every in-flight request; offload "
                          f"via loop.run_in_executor")

    @staticmethod
    def _own_nodes(fn: ast.AsyncFunctionDef):
        """Walk ``fn``'s body without descending into nested function
        scopes (offload lambdas/defs legitimately block — in the
        executor thread, not the event loop)."""
        stack = list(fn.body)
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                continue
            stack.extend(ast.iter_child_nodes(node))

"""Happens-before race sanitizer for the stream scheduler.

PR 4 made multi-GPU modeled time the critical path through the
:class:`repro.gpu.streams.StreamScheduler` event DAG.  That buys the
paper's compute/communication overlap, but it also means a *missing*
``deps=`` edge no longer crashes anything: a chunked B-reduction that
should wait for its chunk's GEMM simply starts earlier, silently
under-reporting the modeled elapsed time that the Figure 15
strong-scaling comparison rests on.  This module is the correctness
tool a real stream runtime ships with — a dynamic data-race detector
over the schedule.

The model is the classic vector-clock happens-before relation:

- every ``(device, stream)`` pair is a *lane*; submissions on one lane
  are FIFO-ordered (the scheduler serializes them, exactly like a CUDA
  stream), and a submission occupying several lanes (a PCIe copy holds
  both the device copy engine and the shared host ``pcie`` lane) joins
  and advances all of them;
- a :class:`repro.gpu.streams.StreamEvent` carries the vector clock of
  the submission that produced it, so ``deps=[ev]`` merges that clock;
  ``after_all=True``, ``barrier()``, and ``overlap=False`` merge the
  clock of everything submitted so far;
- submissions declare the logical buffers they touch via ``reads=`` /
  ``writes=`` (names like ``B_chunk[0]``, ``R_bar``, ``Q_panel``); two
  accesses to the same buffer conflict when at least one writes, and a
  conflicting pair with neither side happens-before the other is a
  **race**.

The checker is observation-only: it never changes start times, charged
seconds, or the critical path.  ``raise_on_race=True`` (what
``REPRO_RACE_CHECK=1`` installs) raises :class:`repro.errors.RaceError`
at detection time; the default collects :class:`Race` records for the
machine-readable :meth:`RaceChecker.report` that ``repro-bench obs run
--race-check`` writes and CI renders.

The static twins of this sanitizer are lints RS109-RS112 (dropped
events, unordered transfers, missing ``reads=``/``writes=``
annotations — the annotations this checker consumes); together they
make the vector-clock evidence complete.  See
``docs/static_analysis.md`` for the rule reference and
``docs/performance.md`` for the stream model under test.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import RaceError

__all__ = ["Access", "Race", "RaceChecker", "REPORT_VERSION",
           "lane_name", "render_report", "write_report"]

#: Schema version of the machine-readable race report.
REPORT_VERSION = 1

Lane = Tuple[int, str]
#: A vector clock: lane -> number of that lane's submissions observed.
Clock = Dict[Lane, int]


def lane_name(lane: Lane) -> str:
    """Human/JSON form of a lane: ``"gpu0:compute"`` / ``"host:pcie"``."""
    device, stream = lane
    return f"{'host' if device < 0 else f'gpu{device}'}:{stream}"


@dataclass(frozen=True)
class Access:
    """One declared buffer access by one submission."""

    sub: int                   #: submission index (checker-local)
    buffer: str
    mode: str                  #: ``"R"`` or ``"W"``
    label: str
    phase: str
    lanes: Tuple[Lane, ...]
    clock: Tuple[Tuple[Lane, int], ...]  #: frozen vector clock

    def happens_before(self, other_clock: Clock) -> bool:
        """True when this access is ordered before a submission whose
        merged clock is ``other_clock`` (it saw all our increments)."""
        clock = dict(self.clock)
        return all(other_clock.get(lane, 0) >= clock[lane]
                   for lane in self.lanes)

    def to_dict(self) -> Dict:
        return {"sub": self.sub, "buffer": self.buffer, "mode": self.mode,
                "label": self.label, "phase": self.phase,
                "lanes": [lane_name(lane) for lane in self.lanes]}


@dataclass(frozen=True)
class Race:
    """One unordered conflicting pair found by the sanitizer."""

    buffer: str
    kind: str                  #: ``"W/W"``, ``"W/R"``, or ``"R/W"``
    first: Access              #: the earlier-submitted access
    second: Access

    @property
    def missing_edge(self) -> str:
        """What would have ordered the pair (the fix suggestion)."""
        return (f"order {self.first.label!r} before {self.second.label!r}: "
                f"pass the first submission's StreamEvent via deps= (or "
                f"after_all=True) to the second")

    def to_dict(self) -> Dict:
        return {"buffer": self.buffer, "kind": self.kind,
                "first": self.first.to_dict(),
                "second": self.second.to_dict(),
                "missing_edge": self.missing_edge}

    def render(self) -> str:
        return (f"race {self.kind} on {self.buffer!r}: "
                f"{self.first.label!r} [{self.first.phase} @ "
                f"{', '.join(lane_name(l) for l in self.first.lanes)}] vs "
                f"{self.second.label!r} [{self.second.phase} @ "
                f"{', '.join(lane_name(l) for l in self.second.lanes)}] "
                f"are unordered; {self.missing_edge}")


class RaceChecker:
    """Vector-clock happens-before checker over one stream schedule.

    Attach with
    :meth:`repro.gpu.streams.StreamScheduler.attach_race_checker`; the
    scheduler then feeds every submission's lanes, dependency clocks,
    and declared ``reads=``/``writes=`` through :meth:`on_submit`.
    Detection is exact for the declared accesses: no false negatives
    for annotated buffers, and no false positives — every reported pair
    really is unordered in the event DAG.
    """

    def __init__(self, raise_on_race: bool = False):
        self.raise_on_race = bool(raise_on_race)
        self.races: List[Race] = []
        self.submissions = 0
        self._lane_clocks: Dict[Lane, Clock] = {}
        self._lane_counts: Dict[Lane, int] = {}
        self._global: Clock = {}
        self._writes: Dict[str, List[Access]] = {}
        self._reads: Dict[str, List[Access]] = {}

    # -- clock plumbing ----------------------------------------------------
    @staticmethod
    def _merge(dst: Clock, src: Optional[Clock]) -> None:
        for lane, count in (src or {}).items():
            if count > dst.get(lane, 0):
                dst[lane] = count

    def global_clock(self) -> Clock:
        """Clock covering everything submitted so far (``barrier()``)."""
        return dict(self._global)

    # -- the checker entry point (called by StreamScheduler) ---------------
    def on_submit(self, *, label: str, phase: str,
                  lanes: Sequence[Lane],
                  dep_clocks: Iterable[Optional[Clock]] = (),
                  after_all: bool = False,
                  reads: Sequence[str] = (),
                  writes: Sequence[str] = ()) -> Clock:
        """Observe one submission; returns its vector clock (which the
        scheduler stashes on the returned :class:`StreamEvent`)."""
        lanes = tuple(dict.fromkeys(lanes))  # dedupe, keep order
        clock: Clock = {}
        for lane in lanes:
            self._merge(clock, self._lane_clocks.get(lane))
        for dep in dep_clocks:
            self._merge(clock, dep)
        if after_all:
            self._merge(clock, self._global)
        for lane in lanes:
            self._lane_counts[lane] = self._lane_counts.get(lane, 0) + 1
            clock[lane] = self._lane_counts[lane]
        sub = self.submissions
        self.submissions += 1
        frozen = tuple(sorted(clock.items()))
        # Writes first: a submission reading and writing one buffer is a
        # single atomic access from the schedule's point of view.
        for buffer in writes:
            self._access(Access(sub, str(buffer), "W", label or phase,
                                phase, lanes, frozen), clock)
        for buffer in reads:
            self._access(Access(sub, str(buffer), "R", label or phase,
                                phase, lanes, frozen), clock)
        for lane in lanes:
            self._lane_clocks[lane] = dict(clock)
        self._merge(self._global, clock)
        return clock

    def _access(self, acc: Access, clock: Clock) -> None:
        conflicting = self._writes.get(acc.buffer, [])
        if acc.mode == "W":
            conflicting = conflicting + self._reads.get(acc.buffer, [])
        for prev in conflicting:
            if prev.sub == acc.sub:
                continue
            if not prev.happens_before(clock):
                race = Race(buffer=acc.buffer,
                            kind=f"{prev.mode}/{acc.mode}",
                            first=prev, second=acc)
                self.races.append(race)
                if self.raise_on_race:
                    raise RaceError(race.render(), races=[race])
        store = self._writes if acc.mode == "W" else self._reads
        store.setdefault(acc.buffer, []).append(acc)

    # -- results -----------------------------------------------------------
    def check(self) -> None:
        """Raise :class:`RaceError` when any race was recorded."""
        if self.races:
            raise RaceError(
                f"{len(self.races)} unordered conflicting access pair(s) "
                "in the stream schedule:\n"
                + "\n".join(r.render() for r in self.races),
                races=list(self.races))

    def report(self) -> Dict:
        """Machine-readable summary (the race-report artifact)."""
        buffers = sorted(set(self._writes) | set(self._reads))
        return {
            "version": REPORT_VERSION,
            "race_count": len(self.races),
            "races": [r.to_dict() for r in self.races],
            "submissions": self.submissions,
            "buffers": buffers,
            "lanes": [lane_name(lane)
                      for lane in sorted(self._lane_counts)],
        }


def render_report(report: Dict) -> str:
    """Text table of one :meth:`RaceChecker.report` document (what the
    CI job summary shows)."""
    races = report.get("races", [])
    head = (f"race sanitizer: {len(races)} race(s) over "
            f"{report.get('submissions', 0)} submission(s), "
            f"{len(report.get('buffers', []))} buffer(s)")
    if note := report.get("note"):
        head += f" [{note}]"
    if not races:
        return head + "\n0 races"
    widths_rows = [("buffer", "kind", "first", "second", "missing edge")]
    for r in races:
        first, second = r["first"], r["second"]
        widths_rows.append((
            r["buffer"], r["kind"],
            f"{first['label']} ({first['phase']} @ "
            f"{','.join(first['lanes'])})",
            f"{second['label']} ({second['phase']} @ "
            f"{','.join(second['lanes'])})",
            r["missing_edge"]))
    widths = [max(len(row[i]) for row in widths_rows) for i in range(4)]
    lines = [head]
    for row in widths_rows:
        lines.append("  ".join(col.ljust(w)
                               for col, w in zip(row[:4], widths))
                     + "  " + row[4])
    return "\n".join(lines)


def write_report(path: str, report: Dict) -> None:
    """Write the machine-readable race report as JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=1, sort_keys=True)
        fh.write("\n")

"""Incremental analysis cache keyed by file content hashes.

Layout: one pickle per analyzed source file under
``.repro-analysis-cache/`` (named by a hash of the file's absolute
path), holding the findings the engine produced for that file plus the
pickled :class:`~repro.analysis.callgraph.ModuleInfo` the project pass
needs to resolve calls *into* the file when a neighbour changes.

An entry is valid only when

- its own content hash matches the file on disk,
- the recorded rule selection and analyzed-file set match (a different
  ``--select`` or path set is a different analysis),
- every file in its recorded transitive import closure still has the
  hash it had when the entry was written.

The third condition is the transitive invalidation the import graph
demands: editing ``gpu/device.py`` re-analyzes everything that imports
it (directly or not), while files outside its dependent cone replay
from cache with zero re-parses.  The known precision limit is shared
with the dataflow pass itself: name-matched method candidates can
cross files with no import edge, so a rename in an unrelated module
conservatively requires a cold run (``--no-cache``) to observe.  The
shape pass shares the limit through RS124: an executor in ``gpu/``
is checked against closed forms in ``perfmodel/costs.py`` it never
imports, so an edit to a cost function re-anchors RS124 findings
correctly only for files inside the cost module's dependent cone —
after editing ``costs.py``, a cold run re-judges everything.

The cache is a local build artifact (gitignored); entries are plain
pickles, so never point ``--cache-dir`` at untrusted data.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from pathlib import Path
from typing import Dict, Iterable, Optional

__all__ = ["AnalysisCache", "DEFAULT_CACHE_DIR", "content_hash",
           "selection_key"]

#: Conventional location, relative to the invocation directory.
DEFAULT_CACHE_DIR = ".repro-analysis-cache"

_VERSION = 1


def content_hash(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def selection_key(rules: Iterable[str], relpaths: Iterable[str]) -> str:
    """One hash covering the rule selection and the analyzed set."""
    h = hashlib.sha256()
    for rule in sorted(rules):
        h.update(rule.encode("ascii") + b"\0")
    h.update(b"--\0")
    for rp in sorted(relpaths):
        h.update(rp.encode("utf-8") + b"\0")
    return h.hexdigest()


class AnalysisCache:
    """Per-file entry store with content-hash validity.

    The engine owns the validity *logic* (it knows every file's current
    hash); this class only loads and stores entries atomically.
    """

    def __init__(self, directory: Path):
        self.directory = Path(directory)
        #: Counters the incremental-cache tests assert on.
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def _entry_path(self, abs_path: Path) -> Path:
        name = hashlib.sha1(
            str(abs_path).encode("utf-8")).hexdigest()
        return self.directory / f"{name}.pkl"

    def load(self, abs_path: Path) -> Optional[Dict]:
        """Raw entry for ``abs_path`` or None; no validity judgement."""
        entry_path = self._entry_path(abs_path)
        try:
            with open(entry_path, "rb") as fh:
                entry = pickle.load(fh)
        except (OSError, pickle.PickleError, EOFError, AttributeError,
                ImportError, IndexError):
            return None
        if not isinstance(entry, dict) or entry.get("version") != _VERSION:
            return None
        return entry

    def store(self, abs_path: Path, entry: Dict) -> None:
        entry = dict(entry, version=_VERSION)
        self.directory.mkdir(parents=True, exist_ok=True)
        entry_path = self._entry_path(abs_path)
        fd, tmp = tempfile.mkstemp(dir=str(self.directory),
                                   suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(entry, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, entry_path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return
        self.stores += 1

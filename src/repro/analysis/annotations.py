"""Source annotations recognized by the static analyzer.

These are *markers*: at runtime they do nothing but return the function
unchanged.  The :mod:`repro.analysis` checkers recognize them
syntactically (by decorator name), so they must be applied literally as
``@allow_untimed_math("reason")`` — aliasing the decorator under a
different name hides it from the analyzer.
"""

from __future__ import annotations

from typing import Callable, TypeVar

from ..errors import ConfigurationError

__all__ = ["allow_untimed_math", "ALLOW_UNTIMED_MATH",
           "residency", "RESIDENCY", "RESIDENCY_VALUES",
           "shaped", "SHAPED"]

_F = TypeVar("_F", bound=Callable)

#: The decorator name the RS101 checker looks for.
ALLOW_UNTIMED_MATH = "allow_untimed_math"

#: The decorator name the residency dataflow pass (RS115-RS119) looks
#: for.
RESIDENCY = "residency"

#: The decorator name the symbolic shape pass (RS121-RS124) looks for.
SHAPED = "shaped"

#: Legal residency declarations.  ``device`` means "lives in simulated
#: device memory until explicitly downloaded"; ``host`` means "safe for
#: raw host math"; ``either`` means the callable legitimately returns
#: both depending on configuration.
RESIDENCY_VALUES = ("host", "device", "either")


def allow_untimed_math(reason: str) -> Callable[[_F], _F]:
    """Mark a function as legitimately performing raw (untimed) math.

    The RS101 *untimed-math* rule forbids direct ``np.linalg`` / ``@``
    math inside :mod:`repro.core`, where every FLOP must be charged
    through an executor so modeled times stay faithful to the paper's
    rate models.  Host-side *diagnostics* — residual norms, reference
    errors, post-hoc quality measures that are never part of a modeled
    device run — are exempt, but the exemption must be explicit and
    carry a reason::

        @allow_untimed_math("host-side diagnostic, never on the "
                            "modeled device path")
        def residual(self, a):
            ...

    ``reason`` is required (an empty reason raises
    :class:`repro.errors.ConfigurationError` at import time) so
    exemptions stay reviewable.
    """
    if not isinstance(reason, str) or not reason.strip():
        raise ConfigurationError(
            "allow_untimed_math requires a non-empty reason string")

    def _mark(func: _F) -> _F:
        func.__untimed_math_reason__ = reason
        return func

    return _mark


def residency(returns=None, params=None):
    """Declare the modeled memory residency of a callable's values.

    The cross-module dataflow pass (rules RS115-RS119, see
    :mod:`repro.analysis.dataflow`) seeds its abstract interpretation at
    these declarations: ``returns`` states where the return value lives
    (``"host"``, ``"device"`` or ``"either"``) and ``params`` maps
    parameter names to the residency the callable *requires* of its
    arguments::

        @residency(returns="device")
        def sample_gemm(self, omega, a):
            ...

    Like :func:`allow_untimed_math` this is a marker: at runtime it only
    records the declaration on the function object.  The analyzer reads
    it syntactically, so apply it literally as ``@residency(...)`` with
    constant strings.  It is also a *promise* the analyzer checks — a
    function declared ``returns="host"`` whose body returns a
    device-resident value is an RS115 finding (this is how a dropped
    ``to_host`` in the multi-GPU executor is caught).
    """
    declared = dict(params or {})
    if returns is not None:
        declared["return"] = returns
    for name, value in declared.items():
        if value not in RESIDENCY_VALUES:
            raise ConfigurationError(
                f"residency({name}={value!r}): expected one of "
                f"{RESIDENCY_VALUES}")

    def _mark(func: _F) -> _F:
        func.__residency__ = {"returns": returns,
                              "params": dict(params or {})}
        return func

    return _mark


def _valid_shape_decl(value) -> bool:
    if isinstance(value, str):
        return bool(value.strip())
    if isinstance(value, (tuple, list)):
        return (len(value) > 0
                and all(isinstance(d, str) and d.strip() for d in value))
    return False


def shaped(returns=None, params=None):
    """Declare the symbolic shapes of a callable's arrays.

    The symbolic shape pass (rules RS121-RS124, see
    :mod:`repro.analysis.shapes`) seeds its abstract interpretation at
    these declarations.  Dimensions are *symbols* — the paper's
    ``m, n, k, l, q`` — and the same symbol used twice inside one
    declaration asserts the dimensions are equal::

        @shaped(params={"omega": ("l", "m"), "a": ("m", "n")},
                returns=("l", "n"))
        def sample_gemm(self, omega, a):
            ...

    ``params`` maps parameter names to a shape tuple (for arrays) or a
    single symbol string (for scalar dimension arguments such as
    ``l``); ``returns`` declares the result shape the same way.  Like
    :func:`residency` it is a runtime no-op that records the
    declaration on ``__shaped__``; the analyzer reads it syntactically,
    so apply it literally with constant strings.  It is also a promise
    the analyzer checks: a declared return shape the body's inferred
    shape definitely contradicts is an RS121 finding.
    """
    declared = dict(params or {})
    if returns is not None:
        declared["return"] = returns
    for name, value in declared.items():
        if not _valid_shape_decl(value):
            raise ConfigurationError(
                f"shaped({name}={value!r}): expected a dimension symbol "
                f"or a non-empty tuple of dimension symbols")

    def _mark(func: _F) -> _F:
        func.__shaped__ = {"returns": returns,
                           "params": dict(params or {})}
        return func

    return _mark

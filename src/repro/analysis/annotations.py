"""Source annotations recognized by the static analyzer.

These are *markers*: at runtime they do nothing but return the function
unchanged.  The :mod:`repro.analysis` checkers recognize them
syntactically (by decorator name), so they must be applied literally as
``@allow_untimed_math("reason")`` — aliasing the decorator under a
different name hides it from the analyzer.
"""

from __future__ import annotations

from typing import Callable, TypeVar

from ..errors import ConfigurationError

__all__ = ["allow_untimed_math", "ALLOW_UNTIMED_MATH"]

_F = TypeVar("_F", bound=Callable)

#: The decorator name the RS101 checker looks for.
ALLOW_UNTIMED_MATH = "allow_untimed_math"


def allow_untimed_math(reason: str) -> Callable[[_F], _F]:
    """Mark a function as legitimately performing raw (untimed) math.

    The RS101 *untimed-math* rule forbids direct ``np.linalg`` / ``@``
    math inside :mod:`repro.core`, where every FLOP must be charged
    through an executor so modeled times stay faithful to the paper's
    rate models.  Host-side *diagnostics* — residual norms, reference
    errors, post-hoc quality measures that are never part of a modeled
    device run — are exempt, but the exemption must be explicit and
    carry a reason::

        @allow_untimed_math("host-side diagnostic, never on the "
                            "modeled device path")
        def residual(self, a):
            ...

    ``reason`` is required (an empty reason raises
    :class:`repro.errors.ConfigurationError` at import time) so
    exemptions stay reviewable.
    """
    if not isinstance(reason, str) or not reason.strip():
        raise ConfigurationError(
            "allow_untimed_math requires a non-empty reason string")

    def _mark(func: _F) -> _F:
        func.__untimed_math_reason__ = reason
        return func

    return _mark

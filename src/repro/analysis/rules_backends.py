"""Backend-boundary rule: RS114 raw linear algebra outside
:mod:`repro.backends`.

The pluggable-backend contract concentrates every LAPACK/BLAS-level
primitive behind :class:`repro.backends.base.ComputeBackend` (device
math) and :mod:`repro.backends.hostmath` (host-side diagnostics).  A
stray ``np.linalg.svd`` anywhere else silently pins that call site to
NumPy: it bypasses backend selection, escapes the kernel/transfer
accounting in ``BackendStats``, and breaks the parity guarantee that
swapping ``--backend`` changes arithmetic only inside the backends
package.  RS114 keeps the boundary tight so the guarantee stays
checkable by grep-free machinery.
"""

from __future__ import annotations

import ast
from typing import Tuple

from .engine import BaseChecker, register
from .rules_executor import dotted_name

__all__ = ["BackendLeakChecker", "BACKEND_EXEMPT_SCOPES"]

#: Path fragments (posix) where raw linalg is the implementation layer
#: itself and therefore sanctioned.
BACKEND_EXEMPT_SCOPES: Tuple[str, ...] = ("repro/backends/",)

#: Dotted-call prefixes that must stay inside the backends package.
_LINALG_PREFIXES = ("np.linalg.", "numpy.linalg.", "np.fft.",
                    "numpy.fft.", "scipy.linalg.", "sp.linalg.")

#: Module names whose ``from X import ...`` is likewise a boundary leak.
_LINALG_MODULES = ("numpy.linalg", "numpy.fft", "scipy.linalg")


@register
class BackendLeakChecker(BaseChecker):
    """RS114: linear-algebra primitives must live in repro.backends.

    Outside ``repro/backends/``, calls through ``np.linalg.*`` /
    ``np.fft.*`` / ``scipy.linalg.*`` (and ``from numpy.linalg import
    ...``-style imports) must be rewritten against the executor's
    backend handle (device math) or ``repro.backends.hostmath``
    (host-side diagnostics).  Unlike RS101 this applies to the whole
    source tree, not just ``repro/core``, and ``@allow_untimed_math``
    does not exempt it — untimed diagnostics still route through
    hostmath so the backend boundary stays the single seam.
    """

    rule = "RS114"
    summary = ("raw numpy/scipy linear algebra outside repro.backends; "
               "route through the backend handle or hostmath")

    def run(self):
        if any(scope in self.ctx.relpath
               for scope in BACKEND_EXEMPT_SCOPES):
            return self.findings
        if "repro/" not in self.ctx.relpath:
            return self.findings
        return super().run()

    def visit_Call(self, node: ast.Call) -> None:
        name = dotted_name(node.func)
        if name.startswith(_LINALG_PREFIXES):
            self.emit(node, f"call to {name} outside repro.backends; "
                            "use the executor's backend handle or "
                            "repro.backends.hostmath")
        self.generic_visit(node)

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name in _LINALG_MODULES:
                self.emit(node, f"import of {alias.name} outside "
                                "repro.backends; route the math through "
                                "repro.backends.hostmath")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module in _LINALG_MODULES:
            self.emit(node, f"from {node.module} import ... outside "
                            "repro.backends; route the math through "
                            "repro.backends.hostmath")
        self.generic_visit(node)

"""Symbolic shape & cost-consistency analysis (rules RS121-RS124).

The cost model behind every figure is hand-written: ``gemm_seconds(m,
n, k)`` calls whose arguments must agree with the shapes of the
operands actually multiplied, and per-phase charge totals that must
agree with the closed-form leading-order costs of Figure 5.  Nothing
ties those together at runtime — a transposed argument charges the
wrong seconds and every downstream timing curve silently drifts.  This
pass closes the gap with a forward abstract interpretation over a
**symbolic shape lattice**:

- dimensions are *symbols* (the paper's ``m, n, k, l``) plus three
  structured forms — integer constants, ``local(d)`` for
  ``local_rows(d)`` row chunks on the multi-GPU executor, and
  ``sum(seq[0])`` for stacked-batch totals like ``sum(shape_of(o)[0]
  for o in omegas)``;
- facts are seeded at ``l, m = shape_of(x)`` destructurings, at
  ``SymArray((r, c))`` constructors, at ``@shaped(returns=, params=)``
  declarations (:func:`repro.analysis.annotations.shaped`), and at the
  matmul contract itself (``_mm(a, b)`` raises ``ShapeError`` unless
  ``cols(a) == rows(b)``, so the pass may *unify* those dimensions);
- equality is a union-find over symbols; rules fire only on *definite*
  mismatches between fully-resolved dimension triples, so an unknown
  dimension never convicts.

Rules emitted here (per-file shims live in
:mod:`repro.analysis.rules_shapes`; RS122/RS125 are per-file checkers
there):

======  ==============================================================
RS121   charged-kernel shape mismatch: the ``(m, n, k)`` triple passed
        to ``gemm_seconds``/``gemm_flops``/``_t_gemm`` matches no GEMM
        actually computed in the function (or a ``@shaped`` return
        declaration is contradicted by the inferred return shape)
RS123   uncharged/double-charged branches: a GEMM-class math op
        reachable both with and without a preceding charge, or a
        conditional that computes in both arms but charges in one
RS124   asymptotic drift: per-phase flop totals summed over the
        executor's charge sites (extracted by statically interpreting
        the charge hooks over the fixed-rank trace) disagree with the
        Figure 5 closed forms in ``perfmodel/costs.py`` beyond leading
        order
======  ==============================================================

RS124's static side is shared with ``repro-bench analyze
--audit-costs`` (:mod:`repro.analysis.audit`), which additionally
cross-checks the statically extracted totals against the
runtime-charged totals of an instrumented symbolic run.

Cache caveat (same class as the method-name caveat recorded in
``cache.py``): RS124 relates charge sites in the executor module to
closed forms in ``perfmodel/costs.py`` without an import edge between
them, so after editing only the cost forms run once with
``--no-cache``.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .callgraph import (ClassInfo, FunctionInfo, ModuleInfo, SymbolTable,
                        call_name)
from .dataflow import RawFinding

__all__ = ["ShapeAnalysis", "Dim", "unify", "same",
           "REF_POINTS", "COST_STEPS", "CostInterp", "ShapeVal", "OPAQUE",
           "find_cost_function", "find_executor_classes",
           "static_phase_flops", "eval_cost_flops"]


RULE_SHAPE = "RS121"
RULE_BRANCH = "RS123"
RULE_DRIFT = "RS124"

#: Call leaves whose first three positional arguments are a charged
#: GEMM dimension triple.
_CHARGE_TRIPLES = ("gemm_seconds", "gemm_flops", "cholesky_seconds",
                   "_t_gemm")

#: Call leaves that submit modeled time (the RS123 charge events).
_T_HOOK = re.compile(r"^_t_[a-z0-9_]+$")
_CHARGE_LEAVES = {"submit", "submit_group", "charge",
                  "_charge_all", "_charge_comm", "_local_gemm"}

#: Backend methods that are GEMM-class math (the RS121/RS123 ops).
_BACKEND_MATH = {"gemm", "syrk", "trsm", "matmul"}

#: Shape-preserving wrappers the pass sees through.
_PASSTHROUGH = {"to_host", "to_device", "asarray", "ascontiguousarray",
                "array", "ensure_all_finite", "as_2d_float"}


# ---------------------------------------------------------------------------
# The dimension lattice: union-find over symbolic dims
# ---------------------------------------------------------------------------

class Dim:
    """One symbolic dimension.

    ``kind`` is ``"sym"`` (a named symbol), ``"const"`` (an integer
    literal), ``"local"`` (``local_rows(inner)``) or ``"sumof"``
    (``sum(shape_of(o)[axis] for o in seq)``).  ``known`` marks dims
    that name a real quantity (a destructured axis, a declared symbol);
    fresh placeholders for unanalyzable expressions stay unknown and
    never participate in a definite verdict.
    """

    __slots__ = ("kind", "name", "value", "inner", "seq", "axis",
                 "known", "_parent")

    def __init__(self, kind: str = "sym", name: str = "",
                 value: Optional[int] = None,
                 inner: Optional["Dim"] = None,
                 seq: str = "", axis: int = 0, known: bool = True):
        self.kind = kind
        self.name = name
        self.value = value
        self.inner = inner
        self.seq = seq
        self.axis = axis
        self.known = known
        self._parent = self


def _find(d: Dim) -> Dim:
    root = d
    while root._parent is not root:
        root = root._parent
    while d._parent is not d:
        d._parent, d = root, d._parent
    return root


def unify(a: Optional[Dim], b: Optional[Dim]) -> None:
    """Record that two dimensions are equal (the matmul contract)."""
    if a is None or b is None:
        return
    ra, rb = _find(a), _find(b)
    if ra is rb:
        return
    # Prefer a structured/known representative so names survive.
    if (rb.kind != "sym" and ra.kind == "sym") \
            or (rb.known and not ra.known):
        ra, rb = rb, ra
    rb._parent = ra
    if rb.known:
        ra.known = True
    if not ra.name and rb.name:
        ra.name = rb.name


def same(a: Optional[Dim], b: Optional[Dim]) -> bool:
    """Definitely-equal under the recorded unifications."""
    if a is None or b is None:
        return False
    ra, rb = _find(a), _find(b)
    if ra is rb:
        return True
    if ra.kind == "const" and rb.kind == "const":
        return ra.value == rb.value
    if ra.kind == "local" and rb.kind == "local":
        return same(ra.inner, rb.inner)
    if ra.kind == "sumof" and rb.kind == "sumof":
        return ra.seq == rb.seq and ra.axis == rb.axis
    return False


def _known(d: Optional[Dim]) -> bool:
    if d is None:
        return False
    r = _find(d)
    if r.kind == "local":
        return _known(r.inner)
    return r.known


def dim_repr(d: Optional[Dim]) -> str:
    if d is None:
        return "?"
    r = _find(d)
    if r.kind == "const":
        return str(r.value)
    if r.kind == "local":
        return f"local({dim_repr(r.inner)})"
    if r.kind == "sumof":
        return f"sum({r.seq}[{r.axis}])"
    return r.name or "?"


# ---------------------------------------------------------------------------
# Per-function forward shape flow (RS121 + RS123)
# ---------------------------------------------------------------------------

class _ShapeFlow:
    """Walks one function, tracking variable shapes and the charge
    interval (min/max charges issued so far on any path)."""

    def __init__(self, analysis: "ShapeAnalysis", mod: ModuleInfo,
                 fn: FunctionInfo):
        self.analysis = analysis
        self.table = analysis.table
        self.mod = mod
        self.fn = fn
        #: var -> ("arr", (Dim, Dim)) | ("dim", Dim) | ("shapetup", tuple)
        self.env: Dict[str, Tuple[str, object]] = {}
        #: sequence var -> element shape (for stacked batches).
        self.elem_shapes: Dict[str, Tuple[Dim, Dim]] = {}
        self._consts: Dict[int, Dim] = {}
        self.decl_syms: Dict[str, Dim] = {}
        self.bound_syms: Set[str] = set()
        self.charges: List[Tuple[Tuple[Dim, Dim, Dim], ast.Call]] = []
        self.ops: List[Tuple[Tuple[Dim, Dim, Dim], ast.AST]] = []
        self.lo = 0
        self.hi = 0
        self.timed = _timed_scope(mod)
        self._seen_if: Set[int] = set()

    # -- dim/shape helpers -----------------------------------------------
    def fresh(self, name: str = "", known: bool = False) -> Dim:
        return Dim("sym", name=name, known=known)

    def const(self, value: int) -> Dim:
        if value not in self._consts:
            self._consts[value] = Dim("const", value=value)
        return self._consts[value]

    def decl_sym(self, symbol: str) -> Dim:
        if symbol not in self.decl_syms:
            self.decl_syms[symbol] = Dim("sym", name=symbol, known=True)
        return self.decl_syms[symbol]

    def var_shape(self, name: str) -> Tuple[Dim, Dim]:
        tagged = self.env.get(name)
        if tagged is not None and tagged[0] == "arr":
            return tagged[1]
        shape = (self.fresh(f"{name}.0"), self.fresh(f"{name}.1"))
        self.env[name] = ("arr", shape)
        return shape

    def elem_shape(self, seq: str) -> Tuple[Dim, Dim]:
        if seq not in self.elem_shapes:
            self.elem_shapes[seq] = (
                Dim("sym", name=f"{seq}[i].0", known=True),
                Dim("sym", name=f"{seq}[i].1", known=True))
        return self.elem_shapes[seq]

    def shape_of_expr(self, node: ast.expr) -> Optional[Tuple[Dim, Dim]]:
        val = self.eval(node)
        if val is not None and val[0] == "arr":
            return val[1]
        if isinstance(node, ast.Name):
            return self.var_shape(node.id)
        return None

    def dim_of_value(self, node: ast.expr,
                     val: Optional[Tuple[str, object]]) -> Optional[Dim]:
        if val is not None and val[0] == "dim":
            return val[1]
        if isinstance(node, ast.Constant) and isinstance(node.value, int) \
                and not isinstance(node.value, bool):
            return self.const(node.value)
        return None

    # -- analysis entry ---------------------------------------------------
    def analyze(self) -> None:
        self._seed_params()
        try:
            for stmt in self.fn.node.body:
                self.stmt(stmt)
        except RecursionError:  # pragma: no cover - pathological nesting
            return
        self._check_charges()

    def _seed_params(self) -> None:
        decl = self.fn.shaped
        for pname in self.fn.params:
            shape_decl = decl.get(pname)
            if shape_decl is None:
                continue
            if isinstance(shape_decl, str):
                self.env[pname] = ("dim", self.decl_sym(shape_decl))
                self.bound_syms.add(shape_decl)
            elif isinstance(shape_decl, tuple) and len(shape_decl) == 2:
                self.env[pname] = ("arr", (self.decl_sym(shape_decl[0]),
                                           self.decl_sym(shape_decl[1])))
                self.bound_syms.update(shape_decl)

    def _bind(self, target: ast.expr, value_node: ast.expr,
              val: Optional[Tuple[str, object]]) -> None:
        if isinstance(target, ast.Name):
            if val is not None:
                self.env[target.id] = val
            else:
                self.env.pop(target.id, None)
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            # ``l, m = shape_of(x)``: name the axes and mark them known
            # — this is the pass's main seeding point.
            if val is not None and val[0] in ("shapetup", "arr") \
                    and len(target.elts) == len(val[1]):
                for elt, dim in zip(target.elts, val[1]):
                    if isinstance(elt, ast.Name):
                        root = _find(dim)
                        root.known = True
                        # The destructured name is the human name for
                        # this axis; it wins over any placeholder.
                        root.name = elt.id
                        self.env[elt.id] = ("dim", dim)
                return
            for elt in target.elts:
                if isinstance(elt, ast.Name):
                    self.env.pop(elt.id, None)

    # -- statements --------------------------------------------------------
    def stmt(self, node: ast.stmt) -> None:
        if isinstance(node, ast.Assign):
            val = self.eval(node.value)
            for target in node.targets:
                self._bind(target, node.value, val)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            val = self.eval(node.value)
            self._bind(node.target, node.value, val)
        elif isinstance(node, ast.AugAssign):
            self.eval(node.value)
        elif isinstance(node, ast.Expr):
            self.eval(node.value)
        elif isinstance(node, ast.Return):
            if node.value is not None:
                val = self.eval(node.value)
                self._check_return(node, val)
        elif isinstance(node, ast.If):
            self._stmt_if(node)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            self.eval(node.iter)
            if isinstance(node.target, ast.Name) \
                    and isinstance(node.iter, ast.Name):
                self.env[node.target.id] = (
                    "arr", self.elem_shape(node.iter.id))
            pre_lo = self.lo
            for child in node.body:
                self.stmt(child)
            for child in node.orelse:
                self.stmt(child)
            # Zero-iteration possibility: charges inside may not happen.
            self.lo = pre_lo
        elif isinstance(node, ast.While):
            self.eval(node.test)
            pre_lo = self.lo
            for child in node.body:
                self.stmt(child)
            self.lo = pre_lo
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                self.eval(item.context_expr)
            for child in node.body:
                self.stmt(child)
        elif isinstance(node, ast.Try):
            for child in node.body:
                self.stmt(child)
            for handler in node.handlers:
                for child in handler.body:
                    self.stmt(child)
            for child in node.orelse + node.finalbody:
                self.stmt(child)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            return  # nested scopes are out of model
        else:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self.eval(child)

    def _stmt_if(self, node: ast.If) -> None:
        self.eval(node.test)
        saved_env = dict(self.env)
        lo0, hi0 = self.lo, self.hi
        for child in node.body:
            self.stmt(child)
        body_env, body_lo, body_hi = self.env, self.lo, self.hi
        self.env = dict(saved_env)
        self.lo, self.hi = lo0, hi0
        for child in node.orelse:
            self.stmt(child)
        else_env, else_lo, else_hi = self.env, self.lo, self.hi
        self.env = _merge_env(body_env, else_env)
        self.lo = min(body_lo, else_lo)
        self.hi = max(body_hi, else_hi)
        self._check_if_arms(node)

    def _check_if_arms(self, node: ast.If) -> None:
        """RS123: both arms compute, only one charges."""
        if not self.timed or id(node) in self._seen_if:
            return
        self._seen_if.add(id(node))
        if not node.orelse:
            return
        body_math = _first_math(node.body)
        else_math = _first_math(node.orelse)
        if body_math is None or else_math is None:
            return
        body_charges = _contains_charge(node.body)
        else_charges = _contains_charge(node.orelse)
        if body_charges == else_charges:
            return
        anchor = else_math if body_charges else body_math
        self.analysis.emit(
            RULE_BRANCH, self.mod, anchor,
            "both arms of this conditional compute GEMM-class math but "
            "only one arm charges the kernel model; the uncharged arm's "
            "seconds vanish from the modeled timeline",
            self.fn.qualname)

    # -- expressions -------------------------------------------------------
    def eval(self, node: ast.expr) -> Optional[Tuple[str, object]]:
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, ast.Name):
            return self.env.get(node.id)
        if isinstance(node, ast.Constant):
            if isinstance(node.value, int) \
                    and not isinstance(node.value, bool):
                return ("dim", self.const(node.value))
            return None
        if isinstance(node, ast.Attribute):
            base = self.eval(node.value)
            if base is not None and base[0] == "arr":
                if node.attr == "T":
                    return ("arr", (base[1][1], base[1][0]))
                if node.attr == "shape":
                    return ("shapetup", base[1])
            if node.attr == "shape" and isinstance(node.value, ast.Name):
                return ("shapetup", self.var_shape(node.value.id))
            return None
        if isinstance(node, ast.Subscript):
            return self._subscript(node)
        if isinstance(node, ast.BinOp):
            left = self.eval(node.left)
            right = self.eval(node.right)
            if isinstance(node.op, ast.MatMult):
                ls = left[1] if left and left[0] == "arr" else \
                    self.shape_of_expr(node.left)
                rs = right[1] if right and right[0] == "arr" else \
                    self.shape_of_expr(node.right)
                return self._math_op(node, ls, rs)
            return None
        if isinstance(node, (ast.Tuple, ast.List)):
            for elt in node.elts:
                self.eval(elt)
            return None
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            return self._comprehension(node)
        if isinstance(node, ast.IfExp):
            self.eval(node.test)
            a = self.eval(node.body)
            b = self.eval(node.orelse)
            if a is not None and b is not None and a[0] == b[0] == "dim" \
                    and same(a[1], b[1]):
                return a
            return None
        # Generic: walk children for nested charges/ops.
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.eval(child)
        return None

    def _comprehension(self, node) -> None:
        saved: Dict[str, Optional[Tuple[str, object]]] = {}
        for gen in node.generators:
            self.eval(gen.iter)
            if isinstance(gen.target, ast.Name) \
                    and isinstance(gen.iter, ast.Name):
                saved[gen.target.id] = self.env.get(gen.target.id)
                self.env[gen.target.id] = (
                    "arr", self.elem_shape(gen.iter.id))
            for cond in gen.ifs:
                self.eval(cond)
        self.eval(node.elt)
        for name, old in saved.items():
            if old is None:
                self.env.pop(name, None)
            else:
                self.env[name] = old
        return None

    def _subscript(self, node: ast.Subscript) -> Optional[Tuple]:
        base = self.eval(node.value)
        sl = node.slice
        if base is not None and base[0] == "shapetup":
            if isinstance(sl, ast.Constant) and isinstance(sl.value, int):
                shape = base[1]
                if 0 <= sl.value < len(shape):
                    dim = shape[sl.value]
                    _find(dim).known = True
                    return ("dim", dim)
            return None
        if base is not None and base[0] == "arr":
            rows, cols = base[1]
            if isinstance(sl, ast.Tuple) and len(sl.elts) == 2:
                r = self._slice_dim(sl.elts[0], rows)
                c = self._slice_dim(sl.elts[1], cols)
                return ("arr", (r, c))
            if isinstance(sl, ast.Slice):
                return ("arr", (self._slice_dim(sl, rows), cols))
        if sl is not None and isinstance(sl, ast.expr):
            self.eval(sl)
        return None

    def _slice_dim(self, sl: ast.expr, full: Dim) -> Dim:
        if isinstance(sl, ast.Slice):
            if sl.lower is None and sl.upper is None:
                return full
            if sl.lower is None and sl.upper is not None:
                d = self.dim_of_value(sl.upper, self.eval(sl.upper))
                if d is not None:
                    return d
            return self.fresh()
        return self.fresh()

    # -- calls -------------------------------------------------------------
    def _call(self, node: ast.Call) -> Optional[Tuple[str, object]]:
        dotted = call_name(node.func)
        leaf = dotted.rsplit(".", 1)[-1] if dotted else ""
        argvals = [self.eval(a) for a in node.args]
        kwvals = {kw.arg: self.eval(kw.value) for kw in node.keywords
                  if kw.arg}
        if not dotted:
            self.eval(node.func)

        # sum(shape_of(o)[axis] for o in seq) -> a SumOf dimension.
        if leaf == "sum" and len(node.args) == 1:
            sd = self._sum_dim(node.args[0])
            if sd is not None:
                return ("dim", sd)

        if leaf == "shape_of" and node.args:
            shape = self.shape_of_expr(node.args[0])
            if shape is not None:
                return ("shapetup", shape)
            return None

        if leaf == "local_rows" and node.args:
            inner = self.dim_of_value(node.args[0], argvals[0])
            if inner is not None:
                return ("dim", Dim("local", inner=inner,
                                   known=_known(inner)))
            return None

        if leaf == "SymArray" and node.args \
                and isinstance(node.args[0], (ast.Tuple, ast.List)) \
                and len(node.args[0].elts) == 2:
            dims = []
            for elt in node.args[0].elts:
                d = self.dim_of_value(elt, self.eval(elt))
                dims.append(d if d is not None else self.fresh())
            return ("arr", tuple(dims))

        if leaf in _PASSTHROUGH and node.args:
            first = argvals[0]
            if first is not None and first[0] == "arr":
                return first
            if isinstance(node.args[0], ast.Name):
                return ("arr", self.var_shape(node.args[0].id))
            return None

        # GEMM-class math: _mm(x, y) / <...>.backend.gemm(x, y) / x @ y.
        if self._is_math_call(node, dotted, leaf) and len(node.args) >= 2:
            ls = self.shape_of_expr(node.args[0])
            rs = self.shape_of_expr(node.args[1])
            return self._math_op(node, ls, rs)

        # Charged dimension triples.
        if leaf in _CHARGE_TRIPLES and len(node.args) >= 3:
            dims = []
            for arg, val in zip(node.args[:3], argvals[:3]):
                dims.append(self.dim_of_value(arg, val))
            if all(d is not None for d in dims):
                self.charges.append((tuple(dims), node))
            if leaf == "_t_gemm":
                self._charge_event(node)
            return None

        # RS123 charge events.
        if self._is_charge_call(node, dotted, leaf):
            self._charge_event(node)
            return None

        # Calls into @shaped-declared functions.
        callee = self._resolve_callee(node, dotted, leaf)
        if callee is not None and callee.shaped:
            return self._apply_shaped(callee, node, dotted, argvals, kwvals)
        return None

    def _sum_dim(self, arg: ast.expr) -> Optional[Dim]:
        if not isinstance(arg, ast.GeneratorExp) or len(arg.generators) != 1:
            return None
        gen = arg.generators[0]
        if not (isinstance(gen.target, ast.Name)
                and isinstance(gen.iter, ast.Name) and not gen.ifs):
            return None
        elt = arg.elt
        axis = None
        if isinstance(elt, ast.Subscript) \
                and isinstance(elt.slice, ast.Constant) \
                and isinstance(elt.slice.value, int):
            base = elt.value
            axis = elt.slice.value
            ok = (isinstance(base, ast.Call)
                  and call_name(base.func).rsplit(".", 1)[-1] == "shape_of"
                  and base.args
                  and isinstance(base.args[0], ast.Name)
                  and base.args[0].id == gen.target.id) \
                or (isinstance(base, ast.Attribute)
                    and base.attr == "shape"
                    and isinstance(base.value, ast.Name)
                    and base.value.id == gen.target.id)
            if not ok:
                return None
        if axis is None:
            return None
        self.elem_shape(gen.iter.id)  # ensure element dims exist
        return Dim("sumof", seq=gen.iter.id, axis=axis, known=True)

    def _is_math_call(self, node: ast.Call, dotted: str, leaf: str) -> bool:
        if leaf == "_mm":
            return True
        if leaf in _BACKEND_MATH and isinstance(node.func, ast.Attribute):
            receiver = call_name(node.func.value)
            return receiver.split(".")[-1] == "backend"
        return False

    def _is_charge_call(self, node: ast.Call, dotted: str,
                        leaf: str) -> bool:
        if not isinstance(node.func, ast.Attribute):
            return leaf in ("submit", "submit_group")
        return bool(_T_HOOK.match(leaf)) or leaf in _CHARGE_LEAVES

    def _charge_event(self, node: ast.Call) -> None:
        self.lo += 1
        self.hi += 1

    def _math_op(self, node: ast.AST,
                 ls: Optional[Tuple[Dim, Dim]],
                 rs: Optional[Tuple[Dim, Dim]]) -> Optional[Tuple]:
        if ls is None or rs is None:
            return None
        # The matmul contract: cols(x) == rows(y) or ShapeError.
        unify(ls[1], rs[0])
        self.ops.append(((ls[0], rs[1], ls[1]), node))
        if self.timed and self.lo == 0 and self.hi > 0:
            self.analysis.emit(
                RULE_BRANCH, self.mod, node,
                "GEMM-class math reachable both with and without a "
                "preceding kernel charge; on the uncharged path its "
                "seconds never reach the modeled timeline",
                self.fn.qualname)
        return ("arr", (ls[0], rs[1]))

    # -- @shaped resolution ------------------------------------------------
    def _resolve_callee(self, node: ast.Call, dotted: str,
                        leaf: str) -> Optional[FunctionInfo]:
        if not dotted:
            return None
        if dotted.startswith("self.") and dotted.count(".") == 1 \
                and self.fn.class_name:
            cls = self.mod.classes.get(self.fn.class_name)
            if cls is not None:
                return self.table.resolve_method(self.mod, cls, leaf)
            return None
        fn = self.table.resolve_function(self.mod, dotted)
        if fn is not None:
            return fn
        if "." in dotted:
            cands = [f for f in self.table.methods_named(leaf) if f.shaped]
            if cands and all(c.shaped == cands[0].shaped for c in cands):
                return cands[0]
        return None

    def _apply_shaped(self, callee: FunctionInfo, node: ast.Call,
                      dotted: str, argvals, kwvals
                      ) -> Optional[Tuple[str, object]]:
        decl = callee.shaped
        params = callee.params
        if callee.is_method and "." in dotted and params \
                and params[0] in ("self", "cls"):
            params = params[1:]
        binding: Dict[str, Dim] = {}

        def sym(s: str) -> Dim:
            if s not in binding:
                binding[s] = Dim("sym", name=s, known=True)
            return binding[s]

        argmap: Dict[str, Tuple[ast.expr, object]] = {}
        for i, (arg, val) in enumerate(zip(node.args, argvals)):
            if i < len(params):
                argmap[params[i]] = (arg, val)
        for kw in node.keywords:
            if kw.arg:
                argmap[kw.arg] = (kw.value, kwvals.get(kw.arg))

        for pname, shape_decl in decl.items():
            if pname == "return" or pname not in argmap:
                continue
            arg, val = argmap[pname]
            if isinstance(shape_decl, str):
                d = self.dim_of_value(arg, val)
                unify(sym(shape_decl), d)
            elif isinstance(shape_decl, tuple) and len(shape_decl) == 2:
                shape = val[1] if (val is not None and val[0] == "arr") \
                    else self.shape_of_expr(arg)
                if shape is not None:
                    unify(sym(shape_decl[0]), shape[0])
                    unify(sym(shape_decl[1]), shape[1])

        ret = decl.get("return")
        if isinstance(ret, str):
            return ("dim", sym(ret))
        if isinstance(ret, tuple) and len(ret) == 2:
            return ("arr", (sym(ret[0]), sym(ret[1])))
        return None

    # -- verdicts ----------------------------------------------------------
    def _check_return(self, node: ast.Return,
                      val: Optional[Tuple[str, object]]) -> None:
        ret = self.fn.shaped.get("return")
        if not (isinstance(ret, tuple) and len(ret) == 2):
            return
        if val is None or val[0] != "arr":
            return
        inferred = val[1]
        for symbol, got in zip(ret, inferred):
            if symbol not in self.bound_syms:
                continue
            want = self.decl_sym(symbol)
            if _known(got) and not same(want, got):
                self.analysis.emit(
                    RULE_SHAPE, self.mod, node,
                    f"@shaped declares this function returns "
                    f"({', '.join(ret)}) but the body returns "
                    f"({dim_repr(inferred[0])}, {dim_repr(inferred[1])})",
                    self.fn.qualname)
                return

    def _compatible(self, c: Dim, o: Dim) -> bool:
        if same(c, o):
            return True
        rc = _find(c)
        if rc.kind == "local" and same(rc.inner, o):
            return True
        if rc.kind == "sumof":
            elems = self.elem_shapes.get(rc.seq)
            if elems is not None and rc.axis < len(elems) \
                    and same(elems[rc.axis], o):
                return True
        return False

    def _check_charges(self) -> None:
        known_ops = [(triple, n) for triple, n in self.ops
                     if all(_known(d) for d in triple)]
        if not known_ops:
            return
        for triple, node in self.charges:
            if not all(_known(d) for d in triple):
                continue
            if any(all(self._compatible(c, o)
                       for c, o in zip(triple, op_triple))
                   for op_triple, _ in known_ops):
                continue
            charged = ", ".join(dim_repr(d) for d in triple)
            nearest = ", ".join(dim_repr(d) for d in known_ops[0][0])
            self.analysis.emit(
                RULE_SHAPE, self.mod, node,
                f"charged GEMM dimensions ({charged}) match no operand "
                f"shape computed in this function (nearest op is "
                f"({nearest})); the kernel model is billing the wrong "
                f"problem size",
                self.fn.qualname)


def _merge_env(a: Dict[str, Tuple], b: Dict[str, Tuple]) -> Dict[str, Tuple]:
    out: Dict[str, Tuple] = {}
    for name, va in a.items():
        vb = b.get(name)
        if vb is None or va[0] != vb[0]:
            continue
        if va[0] == "dim" and same(va[1], vb[1]):
            out[name] = va
        elif va[0] in ("arr", "shapetup") \
                and all(same(x, y) for x, y in zip(va[1], vb[1])):
            out[name] = va
    return out


def _timed_scope(mod: ModuleInfo) -> bool:
    if "repro/gpu/" in mod.relpath:
        return True
    targets = set(mod.imports.values()) | set(mod.from_imports.values())
    return any(t == "repro.gpu.streams"
               or t.startswith("repro.gpu.streams.")
               for t in targets)


def _is_math_node(node: ast.AST) -> bool:
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.MatMult):
        return True
    if isinstance(node, ast.Call):
        dotted = call_name(node.func)
        leaf = dotted.rsplit(".", 1)[-1] if dotted else ""
        if leaf == "_mm":
            return True
        if leaf in _BACKEND_MATH and isinstance(node.func, ast.Attribute):
            return call_name(node.func.value).split(".")[-1] == "backend"
    return False


def _is_charge_node(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    dotted = call_name(node.func)
    leaf = dotted.rsplit(".", 1)[-1] if dotted else ""
    if isinstance(node.func, ast.Attribute):
        return bool(_T_HOOK.match(leaf)) or leaf in _CHARGE_LEAVES
    return leaf in ("submit", "submit_group")


def _first_math(stmts: Sequence[ast.stmt]) -> Optional[ast.AST]:
    for stmt in stmts:
        for node in ast.walk(stmt):
            if _is_math_node(node):
                return node
    return None


def _contains_charge(stmts: Sequence[ast.stmt]) -> bool:
    return any(_is_charge_node(node)
               for stmt in stmts for node in ast.walk(stmt))


# ---------------------------------------------------------------------------
# The restricted charge interpreter (RS124 + --audit-costs static side)
# ---------------------------------------------------------------------------

class _Opaque:
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<opaque>"


OPAQUE = _Opaque()


class ShapeVal:
    """A shape-only array stub (the interpreter's SymArray)."""

    __slots__ = ("dims",)

    def __init__(self, dims: Tuple):
        self.dims = tuple(dims)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ShapeVal{self.dims}"


class InstanceVal:
    """An instance of an analyzed class, with writable attrs."""

    __slots__ = ("cls", "mod", "attrs")

    def __init__(self, cls: ClassInfo, mod: ModuleInfo):
        self.cls = cls
        self.mod = mod
        self.attrs: Dict[str, object] = {}


class _Return(Exception):
    def __init__(self, value):
        self.value = value


class _Raise(Exception):
    pass


class _Budget(Exception):
    pass


class CostInterp:
    """Statically interprets executor methods, recording every charge.

    A deliberately restricted concrete interpreter over the symbol
    table: arithmetic, tuples, comparisons, branches with resolvable
    tests, ``for`` over concrete ranges, and cross-module calls that
    resolve inside the analyzed set.  Arrays are :class:`ShapeVal`
    stubs and ``is_symbolic`` is ``True``, so method bodies follow
    exactly the path a real symbolic (``SymArray``) run takes — charges
    first, math skipped.  Everything it cannot resolve becomes
    ``OPAQUE`` and is never guessed at; an unresolvable charge records
    a warning instead of a number.
    """

    def __init__(self, table: SymbolTable, budget: int = 200_000):
        self.table = table
        self.sinks: List[Tuple[object, object]] = []
        self.warnings: List[str] = []
        self._budget = budget
        self._depth = 0
        self._const_cache: Dict[Tuple[str, str], object] = {}

    # -- public ------------------------------------------------------------
    def call_method(self, inst: InstanceVal, name: str,
                    args: Sequence[object],
                    kwargs: Optional[Dict[str, object]] = None) -> object:
        fn = self.table.resolve_method(inst.mod, inst.cls, name)
        if fn is None:
            self.warnings.append(f"method {name} not found on "
                                 f"{inst.cls.name}")
            return OPAQUE
        return self._run_function(fn, [inst] + list(args), kwargs or {})

    def phase_totals(self) -> Dict[str, float]:
        totals: Dict[str, float] = {}
        for phase, flops in self.sinks:
            if not isinstance(phase, str):
                continue
            value = flops if isinstance(flops, (int, float)) \
                and not isinstance(flops, bool) else 0.0
            totals[phase] = totals.get(phase, 0.0) + float(value)
        return totals

    def eval_function(self, fn: FunctionInfo,
                      kwargs: Dict[str, object]) -> Dict[str, object]:
        """Run a module-level function, returning its final local env
        (how cost closed forms expose their ``flops`` variable)."""
        env: Dict[str, object] = {}
        try:
            self._bind_params(fn, [], dict(kwargs), env)
            self._exec_body(fn, env)
        except _Return:
            pass
        except (_Raise, _Budget):
            pass
        return env

    # -- function machinery ------------------------------------------------
    def _run_function(self, fn: FunctionInfo, args: Sequence[object],
                      kwargs: Dict[str, object]) -> object:
        if self._depth > 12:
            self.warnings.append(f"call depth exceeded at {fn.qualname}")
            return OPAQUE
        self._depth += 1
        env: Dict[str, object] = {}
        try:
            self._bind_params(fn, args, kwargs, env)
            self._exec_body(fn, env)
            return None
        except _Return as ret:
            return ret.value
        except (_Raise, _Budget):
            return OPAQUE
        finally:
            self._depth -= 1

    def _bind_params(self, fn: FunctionInfo, args: Sequence[object],
                     kwargs: Dict[str, object],
                     env: Dict[str, object]) -> None:
        node = fn.node
        names = fn.params
        defaults = node.args.defaults
        # Align defaults to the tail of the positional parameter list.
        offset = len(names) - len(defaults)
        for i, name in enumerate(names):
            if i < len(args):
                env[name] = args[i]
            elif name in kwargs:
                env[name] = kwargs.pop(name)
            elif i >= offset:
                env[name] = self._eval(defaults[i - offset], env, fn)
            else:
                env[name] = OPAQUE
        for kwarg, default in zip(node.args.kwonlyargs,
                                  node.args.kw_defaults):
            name = kwarg.arg
            if name in kwargs:
                env[name] = kwargs.pop(name)
            elif default is not None:
                env[name] = self._eval(default, env, fn)
            else:
                env[name] = OPAQUE

    def _exec_body(self, fn: FunctionInfo, env: Dict[str, object]) -> None:
        for stmt in fn.node.body:
            self._exec(stmt, env, fn)

    # -- statements --------------------------------------------------------
    def _exec(self, node: ast.stmt, env: Dict[str, object],
              fn: FunctionInfo) -> None:
        self._budget -= 1
        if self._budget <= 0:
            raise _Budget()
        if isinstance(node, ast.Assign):
            value = self._eval(node.value, env, fn)
            for target in node.targets:
                self._assign(target, value, env, fn)
        elif isinstance(node, ast.AnnAssign):
            if node.value is not None:
                self._assign(node.target,
                             self._eval(node.value, env, fn), env, fn)
        elif isinstance(node, ast.AugAssign):
            if isinstance(node.target, ast.Name):
                current = env.get(node.target.id, OPAQUE)
                delta = self._eval(node.value, env, fn)
                env[node.target.id] = _arith(node.op, current, delta)
        elif isinstance(node, ast.Expr):
            self._eval(node.value, env, fn)
        elif isinstance(node, ast.Return):
            raise _Return(self._eval(node.value, env, fn)
                          if node.value is not None else None)
        elif isinstance(node, ast.If):
            test = self._eval(node.test, env, fn)
            if isinstance(test, _Opaque):
                # Pure-raise guard bodies are validation: skip them.
                if all(isinstance(s, ast.Raise) for s in node.body):
                    for child in node.orelse:
                        self._exec(child, env, fn)
                elif node.orelse \
                        and all(isinstance(s, ast.Raise)
                                for s in node.orelse):
                    for child in node.body:
                        self._exec(child, env, fn)
                else:
                    self.warnings.append(
                        f"unresolved branch at {fn.qualname}:"
                        f"{node.lineno}")
            elif test:
                for child in node.body:
                    self._exec(child, env, fn)
            else:
                for child in node.orelse:
                    self._exec(child, env, fn)
        elif isinstance(node, ast.For):
            iterable = self._eval(node.iter, env, fn)
            if isinstance(iterable, (range, list, tuple)):
                for item in list(iterable)[:256]:
                    self._assign(node.target, item, env, fn)
                    for child in node.body:
                        self._exec(child, env, fn)
            else:
                if any(_is_charge_node(n) for s in node.body
                       for n in ast.walk(s)):
                    self.warnings.append(
                        f"skipped loop with charges at {fn.qualname}:"
                        f"{node.lineno}")
        elif isinstance(node, ast.While):
            self.warnings.append(
                f"skipped while loop at {fn.qualname}:{node.lineno}") \
                if any(_is_charge_node(n) for s in node.body
                       for n in ast.walk(s)) else None
        elif isinstance(node, ast.With):
            for child in node.body:
                self._exec(child, env, fn)
        elif isinstance(node, ast.Try):
            for child in node.body:
                self._exec(child, env, fn)
        elif isinstance(node, ast.Raise):
            raise _Raise()
        elif isinstance(node, (ast.Pass, ast.Assert, ast.Import,
                               ast.ImportFrom, ast.Global, ast.Delete,
                               ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef, ast.Break, ast.Continue)):
            return

    def _assign(self, target: ast.expr, value: object,
                env: Dict[str, object], fn: FunctionInfo) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            if isinstance(value, (tuple, list)) \
                    and len(value) == len(target.elts):
                for elt, item in zip(target.elts, value):
                    self._assign(elt, item, env, fn)
            else:
                for elt in target.elts:
                    self._assign(elt, OPAQUE, env, fn)
        elif isinstance(target, ast.Attribute):
            base = self._eval(target.value, env, fn)
            if isinstance(base, InstanceVal):
                base.attrs[target.attr] = value

    # -- expressions -------------------------------------------------------
    def _eval(self, node: ast.expr, env: Dict[str, object],
              fn: FunctionInfo) -> object:
        self._budget -= 1
        if self._budget <= 0:
            raise _Budget()
        if isinstance(node, ast.Constant):
            return node.value
        if isinstance(node, ast.Name):
            if node.id in env:
                return env[node.id]
            if node.id in ("True", "False", "None"):  # pragma: no cover
                return {"True": True, "False": False,
                        "None": None}[node.id]
            return self._module_const(fn.owner, node.id)
        if isinstance(node, ast.Attribute):
            base = self._eval(node.value, env, fn)
            if isinstance(base, InstanceVal):
                return base.attrs.get(node.attr, OPAQUE)
            if isinstance(base, ShapeVal):
                if node.attr == "T":
                    return ShapeVal(base.dims[::-1])
                if node.attr == "shape":
                    return base.dims
            return OPAQUE
        if isinstance(node, ast.BinOp):
            return _arith(node.op, self._eval(node.left, env, fn),
                          self._eval(node.right, env, fn))
        if isinstance(node, ast.UnaryOp):
            operand = self._eval(node.operand, env, fn)
            if isinstance(operand, _Opaque):
                return OPAQUE
            try:
                if isinstance(node.op, ast.USub):
                    return -operand
                if isinstance(node.op, ast.Not):
                    return not operand
                if isinstance(node.op, ast.UAdd):
                    return +operand
            except TypeError:
                return OPAQUE
            return OPAQUE
        if isinstance(node, ast.BoolOp):
            result = None
            for value_node in node.values:
                result = self._eval(value_node, env, fn)
                if isinstance(result, _Opaque):
                    return OPAQUE
                if isinstance(node.op, ast.And) and not result:
                    return result
                if isinstance(node.op, ast.Or) and result:
                    return result
            return result
        if isinstance(node, ast.Compare):
            return self._compare(node, env, fn)
        if isinstance(node, ast.IfExp):
            test = self._eval(node.test, env, fn)
            if isinstance(test, _Opaque):
                return OPAQUE
            return self._eval(node.body if test else node.orelse, env, fn)
        if isinstance(node, ast.Call):
            return self._call(node, env, fn)
        if isinstance(node, ast.Tuple):
            return tuple(self._eval(e, env, fn) for e in node.elts)
        if isinstance(node, ast.List):
            return [self._eval(e, env, fn) for e in node.elts]
        if isinstance(node, ast.Subscript):
            base = self._eval(node.value, env, fn)
            if isinstance(node.slice, ast.Slice):
                return self._slice(base, node.slice, env, fn, axis=0)
            if isinstance(node.slice, ast.Tuple) \
                    and len(node.slice.elts) == 2 \
                    and isinstance(base, ShapeVal):
                out = base
                for axis, sl in enumerate(node.slice.elts):
                    if isinstance(sl, ast.Slice):
                        out = self._slice(out, sl, env, fn, axis=axis)
                return out
            index = self._eval(node.slice, env, fn)
            if isinstance(base, (tuple, list)) and isinstance(index, int):
                if -len(base) <= index < len(base):
                    return base[index]
            return OPAQUE
        if isinstance(node, ast.JoinedStr):
            return OPAQUE
        if isinstance(node, ast.GeneratorExp):
            return self._genexp(node, env, fn)
        if isinstance(node, ast.ListComp):
            gen = self._genexp(node, env, fn)
            return list(gen) if not isinstance(gen, _Opaque) else OPAQUE
        return OPAQUE

    def _slice(self, base: object, sl: ast.Slice,
               env: Dict[str, object], fn: FunctionInfo,
               axis: int) -> object:
        if not isinstance(base, ShapeVal) or axis >= len(base.dims):
            return OPAQUE
        full = base.dims[axis]
        if not isinstance(full, int):
            return OPAQUE
        lower = self._eval(sl.lower, env, fn) if sl.lower else 0
        upper = self._eval(sl.upper, env, fn) if sl.upper else full
        if not isinstance(lower, int) or not isinstance(upper, int):
            return OPAQUE
        lower = max(0, lower if lower >= 0 else full + lower)
        upper = min(full, upper if upper >= 0 else full + upper)
        dims = list(base.dims)
        dims[axis] = max(0, upper - lower)
        return ShapeVal(tuple(dims))

    def _genexp(self, node, env: Dict[str, object],
                fn: FunctionInfo) -> object:
        if len(node.generators) != 1:
            return OPAQUE
        gen = node.generators[0]
        iterable = self._eval(gen.iter, env, fn)
        if not isinstance(iterable, (range, list, tuple)):
            return OPAQUE
        out = []
        for item in list(iterable)[:256]:
            self._assign(gen.target, item, env, fn)
            if all(self._eval(c, env, fn) for c in gen.ifs):
                out.append(self._eval(node.elt, env, fn))
        return out

    def _compare(self, node: ast.Compare, env: Dict[str, object],
                 fn: FunctionInfo) -> object:
        left = self._eval(node.left, env, fn)
        for op, comp in zip(node.ops, node.comparators):
            right = self._eval(comp, env, fn)
            if isinstance(op, ast.Is):
                result = left is right or (left is None and right is None)
            elif isinstance(op, ast.IsNot):
                result = not (left is right
                              or (left is None and right is None))
            elif isinstance(left, _Opaque) or isinstance(right, _Opaque):
                return OPAQUE
            else:
                try:
                    if isinstance(op, ast.Eq):
                        result = left == right
                    elif isinstance(op, ast.NotEq):
                        result = left != right
                    elif isinstance(op, ast.Lt):
                        result = left < right
                    elif isinstance(op, ast.LtE):
                        result = left <= right
                    elif isinstance(op, ast.Gt):
                        result = left > right
                    elif isinstance(op, ast.GtE):
                        result = left >= right
                    elif isinstance(op, ast.In):
                        result = left in right
                    elif isinstance(op, ast.NotIn):
                        result = left not in right
                    else:
                        return OPAQUE
                except TypeError:
                    return OPAQUE
            if not result:
                return False
            left = right
        return True

    # -- calls -------------------------------------------------------------
    def _call(self, node: ast.Call, env: Dict[str, object],
              fn: FunctionInfo) -> object:
        dotted = call_name(node.func)
        leaf = dotted.rsplit(".", 1)[-1] if dotted else ""

        # Charge sinks: record (phase, flops) and move on.
        if isinstance(node.func, ast.Attribute) \
                and leaf in ("charge", "submit", "submit_group"):
            phase = self._eval(node.args[0], env, fn) if node.args \
                else OPAQUE
            flops: object = 0.0
            for kw in node.keywords:
                if kw.arg == "flops":
                    flops = self._eval(kw.value, env, fn)
                elif kw.arg is not None:
                    self._eval(kw.value, env, fn)
            if isinstance(phase, _Opaque) or isinstance(flops, _Opaque):
                self.warnings.append(
                    f"unresolved charge at {fn.qualname}:{node.lineno}")
            self.sinks.append((phase, flops))
            return OPAQUE

        args = [self._eval(a, env, fn) for a in node.args
                if not isinstance(a, ast.Starred)]
        kwargs = {kw.arg: self._eval(kw.value, env, fn)
                  for kw in node.keywords if kw.arg}

        intrinsic = self._intrinsic(leaf, node, args, env, fn)
        if intrinsic is not NotImplemented:
            return intrinsic

        # Method on an analyzed instance.
        if isinstance(node.func, ast.Attribute):
            base = self._eval(node.func.value, env, fn)
            if isinstance(base, InstanceVal):
                target = self.table.resolve_method(base.mod, base.cls, leaf)
                if target is not None:
                    return self._run_function(target, [base] + args, kwargs)
            return OPAQUE

        # Plain or imported function / class in the analyzed set.
        owner = fn.owner
        target = self.table.resolve_function(owner, dotted)
        if target is not None:
            return self._run_function(target, args, kwargs)
        cls = self.table.resolve_class(owner, dotted)
        if cls is not None:
            if cls.name == "SymArray" and args \
                    and isinstance(args[0], tuple):
                return ShapeVal(args[0])
            return InstanceVal(cls, cls.owner)
        return OPAQUE

    def _intrinsic(self, leaf: str, node: ast.Call,
                   args: List[object], env: Dict[str, object],
                   fn: FunctionInfo) -> object:
        if leaf == "shape_of":
            return args[0].dims if args \
                and isinstance(args[0], ShapeVal) else OPAQUE
        if leaf == "is_symbolic":
            return True
        if leaf == "isinstance":
            if args and isinstance(args[0], ShapeVal) \
                    and "SymArray" in ast.dump(node.args[1]):
                return True
            return OPAQUE
        if leaf == "SymArray":
            return ShapeVal(args[0]) if args \
                and isinstance(args[0], tuple) else OPAQUE
        if leaf in ("min", "max", "abs", "float", "int", "len", "sum",
                    "round", "bool"):
            if any(isinstance(a, _Opaque) for a in args):
                return OPAQUE
            try:
                impl = {"min": min, "max": max, "abs": abs,
                        "float": float, "int": int, "len": len,
                        "sum": sum, "round": round, "bool": bool}[leaf]
                return impl(*args)
            except (TypeError, ValueError):
                return OPAQUE
        if leaf == "range":
            if all(isinstance(a, int) for a in args) \
                    and len(args) in (1, 2, 3):
                return range(*args)
            return OPAQUE
        if leaf == "getattr":
            if len(args) >= 3 and isinstance(args[0], _Opaque):
                return args[2]
            return OPAQUE
        return NotImplemented

    # -- module constants --------------------------------------------------
    def _module_const(self, mod: Optional[ModuleInfo],
                      name: str, _depth: int = 0) -> object:
        if mod is None or _depth > 4:
            return OPAQUE
        key = (mod.name, name)
        if key in self._const_cache:
            return self._const_cache[key]
        self._const_cache[key] = OPAQUE  # cycle guard
        value: object = OPAQUE
        for assign in mod.module_assigns:
            for target in assign.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    value = self._const_expr(assign.value, mod, _depth)
        if isinstance(value, _Opaque):
            target_name = mod.from_imports.get(name)
            if target_name and "." in target_name:
                owner, leaf = target_name.rsplit(".", 1)
                owner_mod = self.table.modules.get(owner)
                if owner_mod is not None:
                    value = self._module_const(owner_mod, leaf, _depth + 1)
        self._const_cache[key] = value
        return value

    def _const_expr(self, node: ast.expr, mod: ModuleInfo,
                    _depth: int) -> object:
        if isinstance(node, ast.Constant):
            return node.value
        if isinstance(node, (ast.Tuple, ast.List)):
            items = [self._const_expr(e, mod, _depth) for e in node.elts]
            if any(isinstance(i, _Opaque) for i in items):
                return OPAQUE
            return tuple(items) if isinstance(node, ast.Tuple) else items
        if isinstance(node, ast.Name):
            return self._module_const(mod, node.id, _depth + 1)
        if isinstance(node, ast.BinOp):
            return _arith(node.op, self._const_expr(node.left, mod, _depth),
                          self._const_expr(node.right, mod, _depth))
        return OPAQUE


def _arith(op: ast.operator, left: object, right: object) -> object:
    if isinstance(left, _Opaque) or isinstance(right, _Opaque):
        return OPAQUE
    try:
        if isinstance(op, ast.Add):
            return left + right
        if isinstance(op, ast.Sub):
            return left - right
        if isinstance(op, ast.Mult):
            return left * right
        if isinstance(op, ast.Div):
            return left / right
        if isinstance(op, ast.FloorDiv):
            return left // right
        if isinstance(op, ast.Mod):
            return left % right
        if isinstance(op, ast.Pow):
            return left ** right
    except (TypeError, ZeroDivisionError, ValueError):
        return OPAQUE
    return OPAQUE


# ---------------------------------------------------------------------------
# RS124: the fixed-rank trace and the Figure 5 step table
# ---------------------------------------------------------------------------

#: Reference evaluation points (the paper's regime: k <= l << n <= m,
#: all distinct so a transposed argument cannot evaluate coincidentally
#: equal).
REF_POINTS: Tuple[Dict[str, int], ...] = (
    {"m": 15000, "n": 3000, "l": 64, "k": 54, "q": 2},
    {"m": 9000, "n": 2000, "l": 32, "k": 24, "q": 1},
)

#: (phase, Figure 5 cost function, its arguments, charged/closed-form
#: scale, anchor op).  The ``qr`` scale of 2 is the CholQR2 convention:
#: the runtime charges both passes of the reorthogonalized factorization
#: while the closed form counts a single QR (see perfmodel/costs.py).
COST_STEPS: Tuple[Tuple[str, str, Tuple[str, ...], float, str], ...] = (
    ("sampling", "gaussian_sampling_cost", ("m", "n", "l"), 1.0,
     "sample_gemm"),
    ("gemm_iter", "power_iteration_mult_cost", ("m", "n", "l", "q"), 1.0,
     "iter_gemm_at"),
    ("orth_iter", "power_iteration_orth_cost", ("m", "n", "l", "q"), 1.0,
     "orth_rows"),
    ("qrcp", "qrcp_sampled_cost", ("n", "l", "k"), 1.0, "qrcp_sampled"),
    ("qr", "qr_selected_cost", ("m", "k"), 2.0, "qr_selected"),
)

#: Relative drift beyond which RS124 fires.  Generous enough for the
#: lower-order terms the closed forms keep (e.g. ``2k^3/3``) and the
#: small charges sharing a phase (TRSM in ``other``), tight enough that
#: a wrong leading coefficient or a swapped dimension always trips it.
DRIFT_TOLERANCE = 0.05


def find_executor_classes(table: SymbolTable
                          ) -> List[Tuple[ModuleInfo, ClassInfo]]:
    """Charging single-device executor classes: they resolve the
    algorithm ops and the ``_t_gemm`` hook, and none of their own
    methods split work with ``local_rows`` (distributed executors
    charge per-device shapes — RS121's ``local()`` compatibility covers
    those instead)."""
    out = []
    for mod in table.all_modules:
        for cls in mod.classes.values():
            if table.resolve_method(mod, cls, "sample_gemm") is None:
                continue
            if table.resolve_method(mod, cls, "_t_gemm") is None:
                continue
            if any("local_rows" in ast.dump(fn.node)
                   for base in _class_chain(table, mod, cls)
                   for fn in base.methods.values()):
                continue
            out.append((mod, cls))
    return out


def _class_chain(table: SymbolTable, mod: ModuleInfo,
                 cls: ClassInfo) -> List[ClassInfo]:
    """``cls`` plus every resolvable base, in MRO-ish order."""
    chain: List[ClassInfo] = []
    seen: Set[Tuple[str, str]] = set()
    queue: List[Tuple[ModuleInfo, ClassInfo]] = [(mod, cls)]
    while queue:
        owner_mod, owner = queue.pop(0)
        if (owner.module, owner.name) in seen:
            continue
        seen.add((owner.module, owner.name))
        chain.append(owner)
        for base in owner.bases:
            base_cls = table.resolve_class(owner_mod, base)
            if base_cls is not None:
                queue.append((base_cls.owner, base_cls))
    return chain


def static_phase_flops(table: SymbolTable, mod: ModuleInfo,
                       cls: ClassInfo, point: Dict[str, int]
                       ) -> Tuple[Dict[str, float], List[str]]:
    """Per-phase charged flops of one fixed-rank run, extracted by
    statically interpreting the executor's charge hooks over the
    algorithm's op sequence (Figure 2b; the sequence mirrors
    ``repro.core.random_sampling`` + ``power_iterate``, and
    ``--audit-costs`` cross-checks it against an actual instrumented
    run so the two cannot drift apart silently)."""
    m, n, l, k, q = (point["m"], point["n"], point["l"], point["k"],
                     point["q"])
    interp = CostInterp(table)
    inst = InstanceVal(cls, mod)
    a = ShapeVal((m, n))
    interp.call_method(inst, "prng_gaussian", [l, m])
    interp.call_method(inst, "sample_gemm", [ShapeVal((l, m)), a])
    for _ in range(q):
        interp.call_method(inst, "block_orth_rows",
                           [None, ShapeVal((l, n))])
        interp.call_method(inst, "orth_rows", [ShapeVal((l, n))])
        interp.call_method(inst, "iter_gemm_at", [ShapeVal((l, n)), a])
        interp.call_method(inst, "block_orth_rows",
                           [None, ShapeVal((l, m))])
        interp.call_method(inst, "orth_rows", [ShapeVal((l, m))])
        interp.call_method(inst, "iter_gemm_a", [ShapeVal((l, m)), a])
    interp.call_method(inst, "qrcp_sampled", [ShapeVal((l, n)), k])
    interp.call_method(inst, "take_columns", [a, tuple(range(k))])
    interp.call_method(inst, "qr_selected", [ShapeVal((m, k))])
    if n > k:
        interp.call_method(inst, "solve_upper",
                           [ShapeVal((k, k)), ShapeVal((k, n - k))])
        interp.call_method(inst, "assemble_r",
                           [ShapeVal((k, k)), ShapeVal((k, n - k))])
    return interp.phase_totals(), interp.warnings


def find_cost_function(table: SymbolTable,
                       name: str) -> Optional[FunctionInfo]:
    """Resolve a Figure 5 closed form, preferring a ``costs`` module."""
    best = None
    for mod in table.all_modules:
        fn = mod.functions.get(name)
        if fn is None:
            continue
        if mod.relpath.endswith("costs.py"):
            return fn
        if best is None:
            best = fn
    return best


def eval_cost_flops(table: SymbolTable, fn: FunctionInfo,
                    kwargs: Dict[str, object]) -> Optional[float]:
    """Evaluate a cost function's ``flops`` at concrete dimensions by
    interpreting its body (never by importing it — fixtures analyze
    trees that are not importable)."""
    interp = CostInterp(table)
    env = interp.eval_function(fn, dict(kwargs))
    flops = env.get("flops")
    if isinstance(flops, (int, float)) and not isinstance(flops, bool):
        return float(flops)
    return None


# ---------------------------------------------------------------------------
# The project pass
# ---------------------------------------------------------------------------

class ShapeAnalysis:
    """Runs the symbolic shape pass over a :class:`SymbolTable`.

    Same engine contract as
    :class:`repro.analysis.dataflow.ProjectAnalysis`: construct, call
    :meth:`run`, read ``findings_by_file``; the per-file RS121/RS123/
    RS124 shims in :mod:`repro.analysis.rules_shapes` replay the raw
    findings through the noqa machinery.
    """

    def __init__(self, table: SymbolTable):
        self.table = table
        self.findings: List[RawFinding] = []
        self._seen_keys: Set[Tuple] = set()

    def run(self) -> "ShapeAnalysis":
        for mod in self.table.all_modules:
            for fn in mod.all_functions:
                _ShapeFlow(self, mod, fn).analyze()
        self._check_cost_drift()
        self.findings.sort(key=lambda f: (f.relpath, f.line, f.rule, f.col))
        return self

    @property
    def findings_by_file(self) -> Dict[str, List[RawFinding]]:
        out: Dict[str, List[RawFinding]] = {}
        for f in self.findings:
            out.setdefault(f.relpath, []).append(f)
        return out

    def emit(self, rule: str, mod: ModuleInfo, node: ast.AST,
             message: str, context: str) -> None:
        raw = RawFinding(rule=rule, relpath=mod.relpath,
                         line=getattr(node, "lineno", 1),
                         col=getattr(node, "col_offset", 0),
                         message=message, context=context)
        if raw.key() in self._seen_keys:
            return
        self._seen_keys.add(raw.key())
        self.findings.append(raw)

    # -- RS124 -------------------------------------------------------------
    def _check_cost_drift(self) -> None:
        candidates = find_executor_classes(self.table)
        if not candidates:
            return
        cost_fns = {step[1]: find_cost_function(self.table, step[1])
                    for step in COST_STEPS}
        if not any(cost_fns.values()):
            return
        for mod, cls in candidates:
            flagged: Set[str] = set()
            for point in REF_POINTS:
                totals, _warnings = static_phase_flops(
                    self.table, mod, cls, point)
                if not any(totals.values()):
                    break  # a charging executor this is not
                for phase, cost_name, arg_names, scale, anchor \
                        in COST_STEPS:
                    if phase in flagged:
                        continue
                    cost_fn = cost_fns.get(cost_name)
                    charged = totals.get(phase)
                    if cost_fn is None or charged is None:
                        continue
                    expected = eval_cost_flops(
                        self.table, cost_fn,
                        {name: point[name] for name in arg_names})
                    if expected is None or expected <= 0:
                        continue
                    expected *= scale
                    drift = abs(charged - expected) / expected
                    if drift <= DRIFT_TOLERANCE:
                        continue
                    flagged.add(phase)
                    anchor_fn = self.table.resolve_method(mod, cls, anchor)
                    if anchor_fn is not None:
                        anchor_mod, anchor_node = anchor_fn.owner, \
                            anchor_fn.node
                    else:
                        # ClassInfo carries a lineno, which is all
                        # emit() needs of an anchor.
                        anchor_mod, anchor_node = mod, cls
                    dims = ", ".join(f"{d}={point[d]}" for d in arg_names)
                    self.emit(
                        RULE_DRIFT, anchor_mod, anchor_node,
                        f"phase '{phase}' of {cls.name} charges "
                        f"{charged:.4g} flops at {dims} but the "
                        f"Figure 5 closed form {cost_name} gives "
                        f"{expected:.4g}"
                        + (f" (x{scale:g} pass convention)"
                           if scale != 1.0 else "")
                        + f": {drift:.0%} drift beyond leading order",
                        f"{cls.name}.{anchor}")

"""Tuning-knob hygiene: RS120 hard-coded schedule/blocking literals.

The autotuner (:mod:`repro.tune`) exists so schedule and blocking
knobs come from a searched, race-checked, cache-keyed plan — or at
worst from a config object whose defaults are declared once.  A
literal ``pipeline_chunks=8`` at a random call site silently pins a
value the tuner can no longer improve, and drifts from the declared
default without any record of why.
"""

from __future__ import annotations

import ast

from .engine import BaseChecker, register
from .rules_executor import dotted_name

__all__ = ["HardcodedKnobChecker"]


@register
class HardcodedKnobChecker(BaseChecker):
    """RS120: tuning knobs must come from a plan or a config object.

    Flags literal numeric values passed as the known tuning-knob
    keywords (``pipeline_chunks=``, ``cholqr_buffers=``, ``l_inc=``,
    ``block_size=``) anywhere except: the tuner itself
    (``repro/tune/``), the config modules that declare the defaults,
    and the constructors of the config/plan objects those knobs are
    *supposed* to flow through (``SamplingConfig(l_inc=...)`` is the
    sanctioned spelling; ``adaptive_sampling(..., l_inc=8)`` via some
    helper is not).  Values that are themselves variables, attributes,
    or expressions pass — the rule only rejects frozen literals.
    """

    rule = "RS120"
    summary = ("hard-coded tuning-knob literal; set it via a tuning "
               "plan or a config object")

    #: Keyword names the autotuner / config layer owns.
    _KNOBS = ("pipeline_chunks", "cholqr_buffers", "l_inc", "block_size")

    #: Trailing callee names through which literal knobs are sanctioned:
    #: the declared-default config objects, the plan machinery, and
    #: ``dataclasses.replace`` (how plans themselves update configs).
    _ALLOWED_CALLEES = {
        "SamplingConfig", "AdaptiveConfig", "QRCPConfig", "ServeConfig",
        "TunePlan", "PlanKey", "Param", "replace", "coerce_plan_knobs",
    }

    def run(self):
        # The tuner owns the knobs; the config modules declare the
        # defaults the docstrings promise.
        rel = self.ctx.relpath
        if "repro/tune/" in rel or rel.endswith("config.py"):
            return self.findings
        return super().run()

    def visit_Call(self, node: ast.Call) -> None:
        callee = dotted_name(node.func).rsplit(".", 1)[-1]
        if callee not in self._ALLOWED_CALLEES:
            for kw in node.keywords:
                if kw.arg in self._KNOBS \
                        and isinstance(kw.value, ast.Constant) \
                        and isinstance(kw.value.value, (int, float)) \
                        and not isinstance(kw.value.value, bool):
                    self.emit(
                        node,
                        f"{kw.arg}={kw.value.value!r} hard-codes a "
                        f"tuning knob at the call site; route it "
                        f"through a repro-tune plan (plan=/auto_tune=) "
                        f"or a config object instead")
        self.generic_visit(node)

"""Bench-publication rule: RS107 attach-series contract.

The benches in ``benchmarks/`` are the repo's record of the reproduced
series — speedups, phase breakdowns, error norms.  Those numbers must
leave a bench through :func:`repro.obs.artifact.attach_series`, which
lands them both on ``benchmark.extra_info`` (for the pytest-benchmark
JSON) and in the session-level ``BENCH_*.json`` artifact the CI
perf-regression gate diffs.  Ad-hoc ``extra_info`` writes or bare
prints leak numbers past the artifact and the gate silently goes
blind to them.
"""

from __future__ import annotations

import ast
from typing import Tuple

from .engine import BaseChecker, register
from .rules_executor import dotted_name

__all__ = ["BenchAttachChecker", "BENCH_SCOPES"]

#: Path fragments (posix) where RS107 is enforced.
BENCH_SCOPES: Tuple[str, ...] = ("benchmarks/",)


def _is_extra_info(node: ast.expr) -> bool:
    """True for any ``<obj>.extra_info`` attribute access."""
    return isinstance(node, ast.Attribute) and node.attr == "extra_info"


class _AttachScan(ast.NodeVisitor):
    """Find ``attach_series(...)`` calls inside one function body."""

    def __init__(self) -> None:
        self.found = False

    def visit_Call(self, node: ast.Call) -> None:
        if dotted_name(node.func).endswith("attach_series"):
            self.found = True
        self.generic_visit(node)


@register
class BenchAttachChecker(BaseChecker):
    """RS107: benches publish series via ``attach_series``, not ad-hoc.

    Two shapes are flagged inside ``benchmarks/``:

    - a direct write to ``benchmark.extra_info`` (subscript assignment
      or ``.update(...)``) — the record bypasses the session artifact;
    - a ``test_*`` function taking the ``benchmark`` fixture that never
      calls :func:`repro.obs.artifact.attach_series` — the bench's
      reproduced numbers never reach the artifact at all.
    """

    rule = "RS107"
    summary = ("benches must publish reproduced series through "
               "repro.obs.artifact.attach_series")

    def run(self):
        if not any(scope in self.ctx.relpath for scope in BENCH_SCOPES):
            return self.findings
        return super().run()

    # -- missing attach_series in a bench function -----------------------
    def handle_function(self, node) -> None:
        if not node.name.startswith("test_"):
            return
        args = node.args
        names = {a.arg for a in (args.posonlyargs + args.args
                                 + args.kwonlyargs)}
        if "benchmark" not in names:
            return
        scan = _AttachScan()
        for stmt in node.body:
            scan.visit(stmt)
        if not scan.found:
            self.emit(node, f"bench {node.name!r} takes the benchmark "
                            "fixture but never calls attach_series; its "
                            "reproduced series will miss the BENCH_*.json "
                            "artifact and the CI perf gate")

    # -- ad-hoc extra_info writes ----------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if isinstance(target, ast.Subscript) and \
                    _is_extra_info(target.value):
                self.emit(node, "direct write to benchmark.extra_info; "
                                "publish through attach_series so the "
                                "series lands in the BENCH_*.json artifact")
                break
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in (
                "update", "setdefault") and _is_extra_info(func.value):
            self.emit(node, "benchmark.extra_info."
                            f"{func.attr}(...) bypasses the artifact; "
                            "publish through attach_series instead")
        self.generic_visit(node)

"""``repro-bench analyze --audit-costs``: three-way cost-model audit.

RS124 statically interprets the executors' charge hooks and compares
the totals against the Figure 5 closed forms — but a static
interpreter can be wrong in ways that only running the code exposes
(a charge hook the op trace misses, an op sequence that drifted from
``repro.core.random_sampling``).  This audit closes that loop: for the
paper's fig15 configuration (``m=150000 n=2500 k=54 p=10 q=1``, one
device) it produces **three independent** per-phase FLOP totals and
demands they agree to :data:`repro.analysis.shapes.DRIFT_TOLERANCE`:

``static``
    The RS124 interpreter's totals
    (:func:`repro.analysis.shapes.static_phase_flops`) for the
    single-device executor found in the analyzed tree — computed from
    source text alone, never by importing it.
``runtime``
    An actual instrumented run: ``timed_fixed_rank`` on a symbolic
    :class:`repro.gpu.device.SymArray` with a
    :class:`repro.obs.spans.SpanRecorder` attached, read back from
    ``recorder.counters[phase].flops``.  The run is symbolic, so the
    audit is fast even at paper scale.
``closed``
    The Figure 5 closed forms in :mod:`repro.perfmodel.costs`,
    evaluated by interpreting their bodies at the same dimensions
    (times the per-step charge-convention scale from ``COST_STEPS``).

Exit code follows the analyzer contract: 0 when every audited phase
agrees pairwise, 1 on drift, 2 on configuration errors.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..errors import StaticAnalysisError
from .findings import EXIT_CLEAN, EXIT_ERROR, EXIT_FINDINGS
from .shapes import (COST_STEPS, DRIFT_TOLERANCE, eval_cost_flops,
                     find_cost_function, find_executor_classes,
                     static_phase_flops)

__all__ = ["AUDIT_POINT", "audit_costs", "main"]

#: The fig15 configuration at ``ng=1`` (``l = k + p = 64``), chosen
#: because it is the paper's largest phase-breakdown problem: leading
#: terms dominate, so drift here is model drift, not rounding.
AUDIT_POINT: Dict[str, int] = {"m": 150_000, "n": 2_500, "k": 54,
                               "p": 10, "q": 1}


def _build_table(paths: Sequence[Path]):
    """Parse ``paths`` into a :class:`SymbolTable` (no cache: the audit
    must reflect the tree on disk, not a blob)."""
    from .callgraph import ModuleInfo, SymbolTable
    from .engine import ModuleContext, iter_python_files
    infos = []
    for path in iter_python_files(paths):
        try:
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(path))
        except (OSError, SyntaxError) as exc:
            raise StaticAnalysisError(
                f"cannot parse {path}: {exc}") from exc
        relpath = ModuleContext._normalize(path, None)
        infos.append(ModuleInfo(path, relpath, tree))
    return SymbolTable(infos)


def _runtime_phase_flops(point: Dict[str, int]) -> Dict[str, float]:
    """Per-phase charged FLOPs of one instrumented symbolic run."""
    from ..bench.harness import timed_fixed_rank
    from ..obs.spans import SpanRecorder
    rec = SpanRecorder()
    timed_fixed_rank(point["m"], point["n"], k=point["k"], p=point["p"],
                     q=point["q"], ng=1, recorder=rec, seed=0)
    return {phase: counter.flops
            for phase, counter in rec.counters.items()}


def _drift(value: float, reference: float) -> float:
    if reference == 0.0:
        return 0.0 if value == 0.0 else float("inf")
    return abs(value - reference) / abs(reference)


def audit_costs(paths: Sequence[Path],
                tolerance: float = DRIFT_TOLERANCE,
                out=None) -> int:
    """Run the three-way audit; print the table; return an exit code."""
    out = out if out is not None else sys.stdout
    table = _build_table(paths)

    executors = find_executor_classes(table)
    chosen = None
    for mod, cls in executors:
        if cls.name == "GPUExecutor":
            chosen = (mod, cls)
            break
    if chosen is None and executors:
        chosen = executors[0]
    if chosen is None:
        print("repro-analyze: error: no charging single-device "
              "executor class found in the analyzed paths",
              file=sys.stderr)
        return EXIT_ERROR

    point = dict(AUDIT_POINT)
    point["l"] = point["k"] + point["p"]
    static, warnings = static_phase_flops(table, chosen[0], chosen[1],
                                          point)
    for warning in warnings:
        print(f"[audit-costs: {warning}]", file=sys.stderr)
    runtime = _runtime_phase_flops(point)

    mod, cls = chosen
    print(f"[audit-costs: {cls.name} ({mod.relpath}) at "
          + " ".join(f"{k}={point[k]}" for k in ("m", "n", "k", "l", "q"))
          + f", tolerance {tolerance:.0%}]", file=out)
    header = (f"{'phase':<10} {'static':>12} {'runtime':>12} "
              f"{'closed':>12} {'vs runtime':>10} {'vs closed':>10}")
    print(header, file=out)
    print("-" * len(header), file=out)

    failed: List[str] = []
    for phase, cost_name, arg_names, scale, _anchor in COST_STEPS:
        fn = find_cost_function(table, cost_name)
        closed: Optional[float] = None
        if fn is not None:
            closed = eval_cost_flops(
                table, fn, {a: point[a] for a in arg_names})
            if closed is not None:
                closed *= scale
        st = static.get(phase, 0.0)
        rt = runtime.get(phase, 0.0)
        d_rt = _drift(st, rt)
        d_cf = _drift(st, closed) if closed is not None else float("inf")
        ok = d_rt <= tolerance and d_cf <= tolerance
        if not ok:
            failed.append(phase)
        closed_txt = f"{closed:12.4e}" if closed is not None \
            else f"{'?':>12}"
        print(f"{phase:<10} {st:12.4e} {rt:12.4e} {closed_txt} "
              f"{d_rt:>9.2%} {d_cf:>9.2%}"
              + ("" if ok else "  <-- DRIFT"), file=out)

    if failed:
        print(f"[audit-costs: DRIFT in {len(failed)} phase(s): "
              f"{', '.join(failed)}]", file=out)
        return EXIT_FINDINGS
    print("[audit-costs: static, runtime, and closed-form totals "
          "agree on every audited phase]", file=out)
    return EXIT_CLEAN


def main(paths: Sequence[str]) -> int:
    try:
        return audit_costs([Path(p) for p in paths])
    except StaticAnalysisError as exc:
        print(f"repro-analyze: error: {exc}", file=sys.stderr)
        return EXIT_ERROR

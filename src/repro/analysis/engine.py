"""The analysis engine: file discovery, parsing, suppressions, driving.

The engine is rule-agnostic: it walks Python files, parses each into an
AST plus a per-line suppression table, runs every registered checker,
and filters the emitted findings through suppressions and (optionally)
a committed baseline.

Suppression syntax (per line, comma-separated rule list optional)::

    x = a @ b          # repro: noqa RS101
    y = risky()        # repro: noqa RS101, RS103
    z = anything()     # repro: noqa

A bare ``# repro: noqa`` silences every rule on that line.
"""

from __future__ import annotations

import ast
import io
import pickle
import re
import tokenize
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Type

from ..errors import StaticAnalysisError
from .annotations import ALLOW_UNTIMED_MATH
from .cache import content_hash, selection_key
from .findings import AnalysisFinding

__all__ = [
    "ModuleContext",
    "BaseChecker",
    "register",
    "all_rules",
    "iter_python_files",
    "analyze_paths",
    "run_analysis",
    "AnalysisStats",
    "AnalysisResult",
    "parse_noqa",
]

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?P<rules>(?:\s*:?\s*RS\d{3}(?:\s*,\s*RS\d{3})*)?)",
    re.IGNORECASE)
_RULE_RE = re.compile(r"RS\d{3}", re.IGNORECASE)


def parse_noqa(source: str) -> Dict[int, Optional[Set[str]]]:
    """Map 1-based line number -> suppressed rule set.

    ``None`` means "all rules suppressed on this line" (a bare noqa).

    Only genuine ``#`` comments count: the suppression syntax quoted in
    a docstring (as in this module's own header) is documentation, not
    a directive.  Tokenization is the arbiter; if the source does not
    tokenize (it can still AST-parse in edge cases), fall back to the
    per-line regex scan.
    """
    table: Dict[int, Optional[Set[str]]] = {}

    def scan(lineno: int, text: str) -> None:
        m = _NOQA_RE.search(text)
        if not m:
            return
        rules = {r.upper() for r in _RULE_RE.findall(m.group("rules") or "")}
        table[lineno] = rules or None

    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                scan(tok.start[0], tok.string)
    except (tokenize.TokenError, IndentationError, SyntaxError):
        table.clear()
        for lineno, text in enumerate(source.splitlines(), start=1):
            scan(lineno, text)
    return table


class ModuleContext:
    """One parsed source file handed to every checker."""

    def __init__(self, path: Path, source: str, root: Optional[Path] = None):
        self.path = path
        self.source = source
        try:
            self.tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            raise StaticAnalysisError(
                f"cannot parse {path}: {exc}") from exc
        self.noqa = parse_noqa(source)
        self.relpath = self._normalize(path, root)
        #: Lines whose noqa actually silenced at least one finding this
        #: run (consumed by RS113, the stale-suppression rule).
        self.used_noqa: Set[int] = set()
        #: Rules the driver ran over this module — RS113 only calls a
        #: suppression stale when everything it names was exercised.
        self.rules_run: Set[str] = set()

    @staticmethod
    def _normalize(path: Path, root: Optional[Path]) -> str:
        p = path.resolve()
        candidates = [root.resolve()] if root is not None else []
        candidates.append(Path.cwd().resolve())
        for base in candidates:
            try:
                return p.relative_to(base).as_posix()
            except ValueError:
                continue
        return p.as_posix()

    def suppressed(self, rule: str, line: int) -> bool:
        if line not in self.noqa:
            return False
        rules = self.noqa[line]
        hit = rules is None or rule.upper() in rules
        if hit:
            self.used_noqa.add(line)
        return hit


def _decorator_name(node: ast.expr) -> str:
    """Trailing name of a decorator expression (``a.b.c(...)`` -> c)."""
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


class BaseChecker(ast.NodeVisitor):
    """Base class for rules: function-stack tracking + emit helper.

    Subclasses set ``rule`` / ``summary`` and implement visitors.  The
    base visitor maintains ``self.stack`` (enclosing class/function
    names) and ``self.untimed_ok`` depth — how many enclosing
    definitions carry the :func:`repro.analysis.allow_untimed_math`
    marker.
    """

    rule: str = ""
    summary: str = ""

    def __init__(self, ctx: ModuleContext):
        self.ctx = ctx
        self.findings: List[AnalysisFinding] = []
        self.stack: List[str] = []
        self._untimed_depth = 0

    # -- driving ---------------------------------------------------------
    def run(self) -> List[AnalysisFinding]:
        self.visit(self.ctx.tree)
        return self.findings

    def emit(self, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 1)
        if self.ctx.suppressed(self.rule, line):
            return
        self.findings.append(AnalysisFinding(
            rule=self.rule,
            path=self.ctx.relpath,
            line=line,
            col=getattr(node, "col_offset", 0),
            message=message,
            context=self.qualname()))

    def qualname(self) -> str:
        return ".".join(self.stack) if self.stack else "<module>"

    # -- scope tracking --------------------------------------------------
    @property
    def in_untimed_scope(self) -> bool:
        """True inside a definition marked ``@allow_untimed_math``."""
        return self._untimed_depth > 0

    def _enter(self, node) -> bool:
        marked = any(_decorator_name(d) == ALLOW_UNTIMED_MATH
                     for d in getattr(node, "decorator_list", []))
        self.stack.append(node.name)
        if marked:
            self._untimed_depth += 1
        return marked

    def _leave(self, marked: bool) -> None:
        self.stack.pop()
        if marked:
            self._untimed_depth -= 1

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        marked = self._enter(node)
        self.handle_function(node)
        self.generic_visit(node)
        self._leave(marked)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        marked = self._enter(node)
        self.handle_function(node)
        self.generic_visit(node)
        self._leave(marked)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        marked = self._enter(node)
        self.generic_visit(node)
        self._leave(marked)

    def handle_function(self, node) -> None:
        """Hook called on entry of every (async) function definition."""


_REGISTRY: Dict[str, Type[BaseChecker]] = {}


def register(cls: Type[BaseChecker]) -> Type[BaseChecker]:
    """Class decorator adding a checker to the global registry."""
    if not cls.rule or not _RULE_RE.fullmatch(cls.rule):
        raise StaticAnalysisError(
            f"checker {cls.__name__} has invalid rule id {cls.rule!r}")
    if cls.rule in _REGISTRY:
        raise StaticAnalysisError(f"duplicate checker for {cls.rule}")
    _REGISTRY[cls.rule] = cls
    return cls


def all_rules() -> Dict[str, Type[BaseChecker]]:
    """Rule id -> checker class, loading the built-in rule modules."""
    from . import (rules_backends, rules_bench,  # noqa: F401 (side effect)
                   rules_executor, rules_hygiene, rules_residency,
                   rules_shapes, rules_streams, rules_tune)
    return dict(sorted(_REGISTRY.items()))


def iter_python_files(paths: Sequence[Path]) -> Iterable[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    seen: Set[Path] = set()
    for raw in paths:
        p = Path(raw)
        if not p.exists():
            raise StaticAnalysisError(f"no such file or directory: {p}")
        if p.is_dir():
            found = sorted(q for q in p.rglob("*.py")
                           if "egg-info" not in q.parts)
        elif p.suffix == ".py":
            found = [p]
        else:
            raise StaticAnalysisError(f"not a Python file: {p}")
        for q in found:
            r = q.resolve()
            if r not in seen:
                seen.add(r)
                yield q


class AnalysisStats:
    """Counters the incremental-cache and --jobs tests assert on."""

    def __init__(self) -> None:
        #: Files in the analysis set.
        self.files = 0
        #: ``ast.parse`` calls issued by the driver this run.
        self.parses = 0
        #: Files whose findings replayed from a valid cache entry.
        self.cache_hits = 0
        #: Files whose rules actually (re-)ran.
        self.analyzed = 0

    def as_dict(self) -> Dict[str, int]:
        return {"files": self.files, "parses": self.parses,
                "cache_hits": self.cache_hits, "analyzed": self.analyzed}


class AnalysisResult:
    """Findings plus run statistics (see :func:`run_analysis`)."""

    def __init__(self, findings: List[AnalysisFinding],
                 stats: AnalysisStats):
        self.findings = findings
        self.stats = stats


class _FileRecord:
    """Book-keeping for one file across the run phases."""

    __slots__ = ("path", "abs_path", "source", "hash", "relpath",
                 "entry", "valid", "ctx", "module_info", "findings")

    def __init__(self, path: Path, root: Optional[Path]):
        self.path = path
        self.abs_path = path.resolve()
        data = path.read_bytes()
        self.source = data.decode("utf-8")
        self.hash = content_hash(data)
        self.relpath = ModuleContext._normalize(path, root)
        self.entry = None
        self.valid = False
        self.ctx: Optional[ModuleContext] = None
        self.module_info = None
        self.findings: List[AnalysisFinding] = []


def _needs_project(registry, wanted: List[str]) -> bool:
    return any(getattr(registry[r], "requires_project", False)
               for r in wanted)


def _needs_shapes(registry, wanted: List[str]) -> bool:
    return any(getattr(registry[r], "requires_shapes", False)
               for r in wanted)


def _raw_to_tuples(raws) -> List[tuple]:
    return [(r.rule, r.relpath, r.line, r.col, r.message, r.context)
            for r in raws]


def _tuples_to_raw(tuples: Sequence[tuple]):
    from .dataflow import RawFinding
    return [RawFinding(*t) for t in tuples]


def _run_rules_on_ctx(ctx: ModuleContext, wanted: List[str],
                      registry) -> List[AnalysisFinding]:
    ctx.rules_run = set(wanted)
    findings: List[AnalysisFinding] = []
    for rule in wanted:
        findings.extend(registry[rule](ctx).run())
    return findings


def _analyze_file_worker(payload) -> List[AnalysisFinding]:
    """Multiprocessing worker: per-file rules for one file.

    The cross-module pass already ran in the parent (its raw findings
    ride along in the payload); workers only re-parse their own file
    and run the per-file checkers, so ordering and output are
    byte-identical to a sequential run after the final global sort.
    """
    (path_str, source, root_str, wanted, raw_tuples) = payload
    registry = all_rules()
    ctx = ModuleContext(Path(path_str), source,
                        root=Path(root_str) if root_str else None)
    ctx.project_findings = _tuples_to_raw(raw_tuples)
    return _run_rules_on_ctx(ctx, wanted, registry)


def run_analysis(paths: Sequence[Path],
                 select: Optional[Iterable[str]] = None,
                 ignore: Optional[Iterable[str]] = None,
                 root: Optional[Path] = None,
                 jobs: int = 1,
                 cache=None) -> AnalysisResult:
    """Run the (selected) checkers over ``paths``.

    The full pipeline: discover files, consult the incremental cache
    (``cache`` is an :class:`repro.analysis.cache.AnalysisCache` or
    ``None``), build the project-wide symbol table and dataflow pass
    when any RS115-RS119 rule is selected, run per-file rules (fanned
    out over ``jobs`` processes when > 1), and store fresh cache
    entries.  Findings are ordered by file, line, rule regardless of
    cache state or job count.  Baseline filtering is the caller's
    concern (see :mod:`repro.analysis.baseline`).
    """
    registry = all_rules()
    wanted = _resolve_rules(registry, select, ignore)
    # The stale-suppression rule judges what every *other* rule left
    # unused, so it must see their suppression hits first.
    wanted.sort(key=lambda r: r == "RS113")
    stats = AnalysisStats()

    records = [_FileRecord(p, root) for p in iter_python_files(paths)]
    stats.files = len(records)
    needs_project = _needs_project(registry, wanted)
    needs_shapes = _needs_shapes(registry, wanted)

    # -- cache validity --------------------------------------------------
    hash_by_relpath = {rec.relpath: rec.hash for rec in records}
    sel_key = None
    if cache is not None:
        sel_key = selection_key(wanted, hash_by_relpath)
        for rec in records:
            rec.entry = cache.load(rec.abs_path)
            rec.valid = (
                rec.entry is not None
                and rec.entry.get("hash") == rec.hash
                and rec.entry.get("relpath") == rec.relpath
                and rec.entry.get("sel_key") == sel_key
                and all(hash_by_relpath.get(rp) == h
                        for rp, h in rec.entry.get("deps", {}).items()))
            if rec.valid:
                cache.hits += 1
            else:
                cache.misses += 1
    stats.cache_hits = sum(1 for rec in records if rec.valid)
    to_analyze = [rec for rec in records if not rec.valid]
    stats.analyzed = len(to_analyze)

    # -- project passes (RS115-RS119 residency, RS121-RS124 shapes) ------
    table = None
    raw_by_file: Dict[str, List] = {}
    if (needs_project or needs_shapes) and to_analyze:
        from .callgraph import ModuleInfo, SymbolTable
        infos = []
        for rec in records:
            if rec.valid and rec.entry.get("module_blob"):
                try:
                    rec.module_info = pickle.loads(
                        rec.entry["module_blob"])
                except Exception:
                    rec.module_info = None
            if rec.module_info is None:
                rec.ctx = ModuleContext(rec.path, rec.source, root=root)
                stats.parses += 1
                rec.module_info = ModuleInfo(rec.path, rec.relpath,
                                             rec.ctx.tree)
            infos.append(rec.module_info)
        table = SymbolTable(infos)
        raws = []
        if needs_project:
            from .dataflow import ProjectAnalysis
            raws.extend(ProjectAnalysis(table).run().findings)
        if needs_shapes:
            from .shapes import ShapeAnalysis
            raws.extend(ShapeAnalysis(table).run().findings)
        raws.sort(key=lambda f: (f.relpath, f.line, f.rule, f.col))
        for raw in raws:
            raw_by_file.setdefault(raw.relpath, []).append(raw)

    # -- per-file rules ---------------------------------------------------
    if jobs and jobs > 1 and len(to_analyze) > 1:
        import multiprocessing
        payloads = [(str(rec.path), rec.source,
                     str(root) if root else None, list(wanted),
                     _raw_to_tuples(raw_by_file.get(rec.relpath, [])))
                    for rec in to_analyze]
        with multiprocessing.Pool(processes=jobs) as pool:
            results = pool.map(_analyze_file_worker, payloads)
        for rec, found in zip(to_analyze, results):
            rec.findings = found
    else:
        for rec in to_analyze:
            if rec.ctx is None:
                rec.ctx = ModuleContext(rec.path, rec.source, root=root)
                stats.parses += 1
            rec.ctx.project_findings = raw_by_file.get(rec.relpath, [])
            rec.findings = _run_rules_on_ctx(rec.ctx, wanted, registry)

    # -- cache store ------------------------------------------------------
    if cache is not None:
        dep_closure = _dep_closures(table) if table is not None else {}
        for rec in to_analyze:
            deps = {}
            for dep_relpath in dep_closure.get(rec.relpath, ()):
                if dep_relpath in hash_by_relpath \
                        and dep_relpath != rec.relpath:
                    deps[dep_relpath] = hash_by_relpath[dep_relpath]
            blob = None
            if rec.module_info is not None:
                try:
                    blob = pickle.dumps(
                        rec.module_info,
                        protocol=pickle.HIGHEST_PROTOCOL)
                except Exception:
                    blob = None
            cache.store(rec.abs_path, {
                "hash": rec.hash,
                "relpath": rec.relpath,
                "sel_key": sel_key,
                "deps": deps,
                "findings": rec.findings,
                "module_blob": blob,
            })

    findings: List[AnalysisFinding] = []
    for rec in records:
        if rec.valid:
            findings.extend(rec.entry.get("findings", []))
        else:
            findings.extend(rec.findings)
    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.col))
    return AnalysisResult(findings, stats)


def _dep_closures(table) -> Dict[str, Set[str]]:
    """relpath -> transitive import-closure relpaths (analyzed files)."""
    graph = table.import_graph()
    relpath_of = {name: m.relpath for name, m in table.modules.items()}
    # Iterative fixpoint: handles import cycles and always
    # over-approximates (an oversized closure only means an extra
    # re-analysis, never a stale cache hit).
    closures: Dict[str, Set[str]] = {
        name: set(deps) for name, deps in graph.items()}
    changed = True
    while changed:
        changed = False
        for name, deps in closures.items():
            extra: Set[str] = set()
            for dep in deps:
                extra |= closures.get(dep, set())
            if not extra <= deps:
                deps |= extra
                changed = True

    result: Dict[str, Set[str]] = {}
    for mod in table.all_modules:
        names = closures.get(mod.name, set())
        result[mod.relpath] = {relpath_of[n] for n in names
                               if n in relpath_of}
    return result


def analyze_paths(paths: Sequence[Path],
                  select: Optional[Iterable[str]] = None,
                  ignore: Optional[Iterable[str]] = None,
                  root: Optional[Path] = None,
                  jobs: int = 1,
                  cache=None) -> List[AnalysisFinding]:
    """Back-compat wrapper around :func:`run_analysis`.

    Returns every unsuppressed finding, ordered by file, line, rule.
    """
    return run_analysis(paths, select=select, ignore=ignore, root=root,
                        jobs=jobs, cache=cache).findings


def _resolve_rules(registry: Dict[str, Type[BaseChecker]],
                   select: Optional[Iterable[str]],
                   ignore: Optional[Iterable[str]]) -> List[str]:
    chosen = ([r.upper() for r in select] if select
              else list(registry))
    unknown = [r for r in chosen if r not in registry]
    if ignore:
        bad = [r.upper() for r in ignore if r.upper() not in registry]
        unknown.extend(bad)
        chosen = [r for r in chosen
                  if r not in {i.upper() for i in ignore}]
    if unknown:
        raise StaticAnalysisError(
            f"unknown rule(s): {', '.join(sorted(set(unknown)))}; "
            f"known: {', '.join(registry)}")
    return chosen

"""The analysis engine: file discovery, parsing, suppressions, driving.

The engine is rule-agnostic: it walks Python files, parses each into an
AST plus a per-line suppression table, runs every registered checker,
and filters the emitted findings through suppressions and (optionally)
a committed baseline.

Suppression syntax (per line, comma-separated rule list optional)::

    x = a @ b          # repro: noqa RS101
    y = risky()        # repro: noqa RS101, RS103
    z = anything()     # repro: noqa

A bare ``# repro: noqa`` silences every rule on that line.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Type

from ..errors import StaticAnalysisError
from .annotations import ALLOW_UNTIMED_MATH
from .findings import AnalysisFinding

__all__ = [
    "ModuleContext",
    "BaseChecker",
    "register",
    "all_rules",
    "iter_python_files",
    "analyze_paths",
    "parse_noqa",
]

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?P<rules>(?:\s*:?\s*RS\d{3}(?:\s*,\s*RS\d{3})*)?)",
    re.IGNORECASE)
_RULE_RE = re.compile(r"RS\d{3}", re.IGNORECASE)


def parse_noqa(source: str) -> Dict[int, Optional[Set[str]]]:
    """Map 1-based line number -> suppressed rule set.

    ``None`` means "all rules suppressed on this line" (a bare noqa).

    Only genuine ``#`` comments count: the suppression syntax quoted in
    a docstring (as in this module's own header) is documentation, not
    a directive.  Tokenization is the arbiter; if the source does not
    tokenize (it can still AST-parse in edge cases), fall back to the
    per-line regex scan.
    """
    table: Dict[int, Optional[Set[str]]] = {}

    def scan(lineno: int, text: str) -> None:
        m = _NOQA_RE.search(text)
        if not m:
            return
        rules = {r.upper() for r in _RULE_RE.findall(m.group("rules") or "")}
        table[lineno] = rules or None

    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                scan(tok.start[0], tok.string)
    except (tokenize.TokenError, IndentationError, SyntaxError):
        table.clear()
        for lineno, text in enumerate(source.splitlines(), start=1):
            scan(lineno, text)
    return table


class ModuleContext:
    """One parsed source file handed to every checker."""

    def __init__(self, path: Path, source: str, root: Optional[Path] = None):
        self.path = path
        self.source = source
        try:
            self.tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            raise StaticAnalysisError(
                f"cannot parse {path}: {exc}") from exc
        self.noqa = parse_noqa(source)
        self.relpath = self._normalize(path, root)
        #: Lines whose noqa actually silenced at least one finding this
        #: run (consumed by RS113, the stale-suppression rule).
        self.used_noqa: Set[int] = set()
        #: Rules the driver ran over this module — RS113 only calls a
        #: suppression stale when everything it names was exercised.
        self.rules_run: Set[str] = set()

    @staticmethod
    def _normalize(path: Path, root: Optional[Path]) -> str:
        p = path.resolve()
        candidates = [root.resolve()] if root is not None else []
        candidates.append(Path.cwd().resolve())
        for base in candidates:
            try:
                return p.relative_to(base).as_posix()
            except ValueError:
                continue
        return p.as_posix()

    def suppressed(self, rule: str, line: int) -> bool:
        if line not in self.noqa:
            return False
        rules = self.noqa[line]
        hit = rules is None or rule.upper() in rules
        if hit:
            self.used_noqa.add(line)
        return hit


def _decorator_name(node: ast.expr) -> str:
    """Trailing name of a decorator expression (``a.b.c(...)`` -> c)."""
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


class BaseChecker(ast.NodeVisitor):
    """Base class for rules: function-stack tracking + emit helper.

    Subclasses set ``rule`` / ``summary`` and implement visitors.  The
    base visitor maintains ``self.stack`` (enclosing class/function
    names) and ``self.untimed_ok`` depth — how many enclosing
    definitions carry the :func:`repro.analysis.allow_untimed_math`
    marker.
    """

    rule: str = ""
    summary: str = ""

    def __init__(self, ctx: ModuleContext):
        self.ctx = ctx
        self.findings: List[AnalysisFinding] = []
        self.stack: List[str] = []
        self._untimed_depth = 0

    # -- driving ---------------------------------------------------------
    def run(self) -> List[AnalysisFinding]:
        self.visit(self.ctx.tree)
        return self.findings

    def emit(self, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 1)
        if self.ctx.suppressed(self.rule, line):
            return
        self.findings.append(AnalysisFinding(
            rule=self.rule,
            path=self.ctx.relpath,
            line=line,
            col=getattr(node, "col_offset", 0),
            message=message,
            context=self.qualname()))

    def qualname(self) -> str:
        return ".".join(self.stack) if self.stack else "<module>"

    # -- scope tracking --------------------------------------------------
    @property
    def in_untimed_scope(self) -> bool:
        """True inside a definition marked ``@allow_untimed_math``."""
        return self._untimed_depth > 0

    def _enter(self, node) -> bool:
        marked = any(_decorator_name(d) == ALLOW_UNTIMED_MATH
                     for d in getattr(node, "decorator_list", []))
        self.stack.append(node.name)
        if marked:
            self._untimed_depth += 1
        return marked

    def _leave(self, marked: bool) -> None:
        self.stack.pop()
        if marked:
            self._untimed_depth -= 1

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        marked = self._enter(node)
        self.handle_function(node)
        self.generic_visit(node)
        self._leave(marked)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        marked = self._enter(node)
        self.handle_function(node)
        self.generic_visit(node)
        self._leave(marked)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        marked = self._enter(node)
        self.generic_visit(node)
        self._leave(marked)

    def handle_function(self, node) -> None:
        """Hook called on entry of every (async) function definition."""


_REGISTRY: Dict[str, Type[BaseChecker]] = {}


def register(cls: Type[BaseChecker]) -> Type[BaseChecker]:
    """Class decorator adding a checker to the global registry."""
    if not cls.rule or not _RULE_RE.fullmatch(cls.rule):
        raise StaticAnalysisError(
            f"checker {cls.__name__} has invalid rule id {cls.rule!r}")
    if cls.rule in _REGISTRY:
        raise StaticAnalysisError(f"duplicate checker for {cls.rule}")
    _REGISTRY[cls.rule] = cls
    return cls


def all_rules() -> Dict[str, Type[BaseChecker]]:
    """Rule id -> checker class, loading the built-in rule modules."""
    from . import (rules_backends, rules_bench,  # noqa: F401 (side effect)
                   rules_executor, rules_hygiene, rules_streams)
    return dict(sorted(_REGISTRY.items()))


def iter_python_files(paths: Sequence[Path]) -> Iterable[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    seen: Set[Path] = set()
    for raw in paths:
        p = Path(raw)
        if not p.exists():
            raise StaticAnalysisError(f"no such file or directory: {p}")
        if p.is_dir():
            found = sorted(q for q in p.rglob("*.py")
                           if "egg-info" not in q.parts)
        elif p.suffix == ".py":
            found = [p]
        else:
            raise StaticAnalysisError(f"not a Python file: {p}")
        for q in found:
            r = q.resolve()
            if r not in seen:
                seen.add(r)
                yield q


def analyze_paths(paths: Sequence[Path],
                  select: Optional[Iterable[str]] = None,
                  ignore: Optional[Iterable[str]] = None,
                  root: Optional[Path] = None) -> List[AnalysisFinding]:
    """Run the (selected) checkers over ``paths``.

    Returns every unsuppressed finding, ordered by file, line, rule.
    Baseline filtering is the caller's concern (see
    :mod:`repro.analysis.baseline`).
    """
    registry = all_rules()
    wanted = _resolve_rules(registry, select, ignore)
    # The stale-suppression rule judges what every *other* rule left
    # unused, so it must see their suppression hits first.
    wanted.sort(key=lambda r: r == "RS113")
    findings: List[AnalysisFinding] = []
    for path in iter_python_files(paths):
        source = path.read_text(encoding="utf-8")
        ctx = ModuleContext(path, source, root=root)
        ctx.rules_run = set(wanted)
        for rule in wanted:
            findings.extend(registry[rule](ctx).run())
    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.col))
    return findings


def _resolve_rules(registry: Dict[str, Type[BaseChecker]],
                   select: Optional[Iterable[str]],
                   ignore: Optional[Iterable[str]]) -> List[str]:
    chosen = ([r.upper() for r in select] if select
              else list(registry))
    unknown = [r for r in chosen if r not in registry]
    if ignore:
        bad = [r.upper() for r in ignore if r.upper() not in registry]
        unknown.extend(bad)
        chosen = [r for r in chosen
                  if r not in {i.upper() for i in ignore}]
    if unknown:
        raise StaticAnalysisError(
            f"unknown rule(s): {', '.join(sorted(set(unknown)))}; "
            f"known: {', '.join(registry)}")
    return chosen

"""Executor-contract rules: RS101 untimed-math, RS102 unknown-phase,
RS103 symbolic-unsafe.

These three rules encode the simulated-GPU executor contract that the
reproduction's performance claims rest on:

- every FLOP on the modeled device path must be charged through an
  executor operation (RS101);
- every charge must land on one of the paper's seven phase-legend tags
  (RS102);
- every code path reachable with a :class:`repro.gpu.SymArray` must
  either be shape-only or guard its value-dependent operations (RS103).
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set, Tuple

from .engine import BaseChecker, register

__all__ = ["UntimedMathChecker", "UnknownPhaseChecker",
           "SymbolicUnsafeChecker", "UNTIMED_MATH_SCOPES"]

#: Path fragments (posix) where RS101 is enforced.  Algorithm code in
#: ``repro/core`` must route math through an executor; the executor
#: backends themselves (``repro/gpu``, ``repro/qr``) and the host-side
#: bench/matrix utilities are the allowlisted implementation layer.
UNTIMED_MATH_SCOPES: Tuple[str, ...] = ("repro/core/",)


def dotted_name(node: ast.expr) -> str:
    """``np.linalg.norm`` -> "np.linalg.norm"; "" when not a name chain."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _phases() -> Tuple[str, ...]:
    from ..gpu.trace import PHASES
    return PHASES


@register
class UntimedMathChecker(BaseChecker):
    """RS101: direct numpy math on the executor-managed path.

    Inside :mod:`repro.core`, linear-algebra FLOPs must go through
    executor operations so they are charged to the kernel model.  A
    bare ``@``, ``np.dot`` or ``np.linalg.*`` call silently runs at
    zero modeled cost and corrupts every reproduced performance figure.
    Host-side diagnostics opt out explicitly with
    ``@allow_untimed_math("reason")``.
    """

    rule = "RS101"
    summary = ("direct numpy math inside repro.core must be routed "
               "through an executor operation")

    #: Dotted-name prefixes whose calls count as raw math.
    _BANNED_PREFIXES = ("np.linalg.", "numpy.linalg.", "np.fft.",
                        "numpy.fft.", "scipy.linalg.", "sp.linalg.")
    _BANNED_CALLS = {"np.dot", "numpy.dot", "np.vdot", "numpy.vdot",
                     "np.matmul", "numpy.matmul", "np.einsum",
                     "numpy.einsum", "np.tensordot", "numpy.tensordot"}

    def run(self):
        if not any(scope in self.ctx.relpath
                   for scope in UNTIMED_MATH_SCOPES):
            return self.findings
        return super().run()

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if isinstance(node.op, ast.MatMult) and not self.in_untimed_scope:
            self.emit(node, "untimed matrix product ('@'); use an "
                            "executor op (e.g. ex.gemm/ex.sample_gemm) or "
                            "mark the function @allow_untimed_math")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if not self.in_untimed_scope:
            name = dotted_name(node.func)
            if name and (name in self._BANNED_CALLS
                         or name.startswith(self._BANNED_PREFIXES)):
                self.emit(node, f"untimed call to {name}; use an "
                                "executor op so the FLOPs are charged, or "
                                "mark the function @allow_untimed_math")
        self.generic_visit(node)


@register
class UnknownPhaseChecker(BaseChecker):
    """RS102: phase tags must come from the paper's phase legend.

    Any string literal passed as a ``phase=`` keyword, as the first
    argument of a ``.charge(...)`` call, or as the default of a
    ``phase`` parameter must be a member of
    :data:`repro.gpu.trace.PHASES`.  A typo here would silently
    misattribute kernel time across the Figure 11-15 stacked bars.
    """

    rule = "RS102"
    summary = "phase tags must be members of repro.gpu.trace.PHASES"

    def __init__(self, ctx):
        super().__init__(ctx)
        self._legend = _phases()

    def _check_literal(self, node: ast.expr, where: str) -> None:
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            if node.value not in self._legend:
                self.emit(node, f"unknown phase {node.value!r} {where}; "
                                f"expected one of {', '.join(self._legend)}")

    def visit_Call(self, node: ast.Call) -> None:
        for kw in node.keywords:
            if kw.arg == "phase":
                self._check_literal(kw.value, "passed as phase=")
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "charge":
            if node.args:
                self._check_literal(node.args[0], "passed to charge()")
        self.generic_visit(node)

    def handle_function(self, node) -> None:
        args = node.args
        # Align defaults with their parameters (positional then kw-only).
        pos = args.posonlyargs + args.args
        for arg, default in zip(pos[len(pos) - len(args.defaults):],
                                args.defaults):
            if arg.arg == "phase":
                self._check_literal(default, "as a phase default")
        for arg, default in zip(args.kwonlyargs, args.kw_defaults):
            if arg.arg == "phase" and default is not None:
                self._check_literal(default, "as a phase default")


def _annotation_mentions_arraylike(node: Optional[ast.expr]) -> bool:
    if node is None:
        return False
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover - malformed annotation
        return False
    return "ArrayLike" in text


class _GuardScan(ast.NodeVisitor):
    """Detect symbolic-execution guards inside one function body."""

    def __init__(self) -> None:
        self.guarded = False

    def visit_Call(self, node: ast.Call) -> None:
        name = dotted_name(node.func)
        if name.endswith("is_symbolic"):
            self.guarded = True
        if (isinstance(node.func, ast.Name)
                and node.func.id == "isinstance" and len(node.args) == 2
                and dotted_name(node.args[1]).endswith("SymArray")):
            self.guarded = True
        self.generic_visit(node)

    def visit_Raise(self, node: ast.Raise) -> None:
        exc = node.exc
        if isinstance(exc, ast.Call):
            exc = exc.func
        if exc is not None and dotted_name(exc).endswith(
                "SymbolicExecutionError"):
            self.guarded = True
        self.generic_visit(node)


@register
class SymbolicUnsafeChecker(BaseChecker):
    """RS103: value-dependent ops on possibly-symbolic arrays.

    Functions that accept ``ArrayLike`` parameters run under symbolic
    (shape-only) execution at paper scale.  Reading actual values —
    ``float(x)``, ``x.item()``, truthiness, comparing ``x``/``np.abs(x)``
    — crashes a symbolic sweep unless the function guards with
    ``is_symbolic`` / ``isinstance(..., SymArray)`` or raises
    ``SymbolicExecutionError`` on the symbolic branch.
    """

    rule = "RS103"
    summary = ("value-dependent operation on an ArrayLike parameter "
               "without an is_symbolic guard")

    def __init__(self, ctx):
        super().__init__(ctx)
        # Stack of (param-name-set, guarded) per enclosing function.
        self._frames: List[Tuple[Set[str], bool]] = []

    def _visit_func(self, node) -> None:
        args = node.args
        names = {
            a.arg for a in (args.posonlyargs + args.args + args.kwonlyargs
                            + ([args.vararg] if args.vararg else []))
            if _annotation_mentions_arraylike(a.annotation)}
        scan = _GuardScan()
        for stmt in node.body:
            scan.visit(stmt)
        self._frames.append((names, scan.guarded))

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_func(node)
        super().visit_FunctionDef(node)
        self._frames.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_func(node)
        super().visit_AsyncFunctionDef(node)
        self._frames.pop()

    def _tracked(self, node: ast.expr) -> Optional[str]:
        """Name of an unguarded ArrayLike param, when ``node`` is one."""
        if not isinstance(node, ast.Name):
            return None
        for names, guarded in reversed(self._frames):
            if node.id in names:
                return None if guarded else node.id
        return None

    def _value_read(self, node: ast.expr) -> Optional[str]:
        """Match ``x`` or ``np.abs(x)`` / ``abs(x)`` for a tracked x."""
        direct = self._tracked(node)
        if direct:
            return direct
        if isinstance(node, ast.Call) and node.args:
            name = dotted_name(node.func)
            if name in ("abs", "np.abs", "numpy.abs", "np.absolute",
                        "numpy.absolute"):
                return self._tracked(node.args[0])
        return None

    def visit_Call(self, node: ast.Call) -> None:
        name = dotted_name(node.func)
        if name in ("float", "int", "bool", "complex") and node.args:
            p = self._tracked(node.args[0])
            if p:
                self.emit(node, f"{name}({p}) reads values of "
                                f"ArrayLike parameter {p!r} without an "
                                "is_symbolic guard")
        if (isinstance(node.func, ast.Attribute)
                and node.func.attr == "item"):
            p = self._tracked(node.func.value)
            if p:
                self.emit(node, f"{p}.item() reads values of ArrayLike "
                                f"parameter {p!r} without an is_symbolic "
                                "guard")
        self.generic_visit(node)

    def _check_truthiness(self, test: ast.expr, what: str) -> None:
        node = test
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Not):
            node = node.operand
        p = self._tracked(node)
        if p:
            self.emit(test, f"truthiness of ArrayLike parameter {p!r} "
                            f"in {what} is value-dependent; guard with "
                            "is_symbolic first")

    def visit_If(self, node: ast.If) -> None:
        self._check_truthiness(node.test, "an if test")
        self.generic_visit(node)

    def visit_While(self, node: ast.While) -> None:
        self._check_truthiness(node.test, "a while test")
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        # Identity tests (`x is None`) are shape-safe, not value reads.
        if all(isinstance(op, (ast.Is, ast.IsNot)) for op in node.ops):
            self.generic_visit(node)
            return
        for side in [node.left] + list(node.comparators):
            p = self._value_read(side)
            if p:
                self.emit(node, f"comparison reads values of ArrayLike "
                                f"parameter {p!r} without an is_symbolic "
                                "guard")
                break
        self.generic_visit(node)

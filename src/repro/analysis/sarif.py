"""SARIF 2.1.0 export for analyzer findings.

SARIF (Static Analysis Results Interchange Format) is the exchange
format GitHub code scanning ingests: CI runs the analyzer with
``--format sarif`` and uploads the result with
``github/codeql-action/upload-sarif``, which renders findings as
annotations on the PR diff.

The emitted log is deliberately minimal but complete:

- one ``run`` with a ``tool.driver`` section listing every *selected*
  rule (id, short description, full help text from the checker
  docstring);
- one ``result`` per finding with ``ruleId``, ``ruleIndex``,
  ``message.text``, a single physical location (uri + 1-based
  startLine/startColumn region), and the baseline fingerprint under
  ``partialFingerprints`` so code scanning tracks findings across
  line-shifting edits exactly like our own baseline file does.

:func:`validate_sarif` is a self-contained structural validator for
the subset we emit (plus everything the 2.1.0 schema makes mandatory).
It exists so the test suite can assert well-formedness without a
vendored copy of the official JSON schema or network access.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List

from .findings import AnalysisFinding

__all__ = ["SARIF_VERSION", "SARIF_SCHEMA_URI", "to_sarif", "render_sarif",
           "validate_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = ("https://raw.githubusercontent.com/oasis-tcs/"
                    "sarif-spec/master/Schemata/sarif-schema-2.1.0.json")

_TOOL_NAME = "repro-analyze"
_INFO_URI = "https://github.com/repro/repro"


def _rule_descriptor(rule: str, cls) -> Dict:
    """SARIF ``reportingDescriptor`` for one registered checker."""
    desc: Dict = {
        "id": rule,
        "name": cls.__name__,
        "shortDescription": {"text": cls.summary},
    }
    doc = (cls.__doc__ or "").strip()
    if doc:
        desc["fullDescription"] = {"text": doc.splitlines()[0].strip()}
        desc["help"] = {"text": doc}
    return desc


def to_sarif(findings: Iterable[AnalysisFinding],
             rules: Dict[str, type]) -> Dict:
    """Build the SARIF log object (a plain JSON-able dict).

    ``rules`` maps rule id -> checker class for every rule that *ran*
    (not just those that fired) — SARIF consumers use the driver rule
    list to know what was checked.
    """
    ordered = sorted(rules)
    rule_index = {rule: i for i, rule in enumerate(ordered)}
    results: List[Dict] = []
    for f in findings:
        result = {
            "ruleId": f.rule,
            "level": "warning",
            "message": {"text": f.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": f.path,
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": f.line,
                        # SARIF columns are 1-based; ours are 0-based.
                        "startColumn": f.col + 1,
                    },
                },
            }],
            "partialFingerprints": {
                "reproAnalyzeFingerprint/v1": f.fingerprint(),
            },
        }
        if f.rule in rule_index:
            result["ruleIndex"] = rule_index[f.rule]
        results.append(result)
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": _TOOL_NAME,
                    "informationUri": _INFO_URI,
                    "rules": [_rule_descriptor(r, rules[r])
                              for r in ordered],
                },
            },
            "originalUriBaseIds": {
                "SRCROOT": {"description": {
                    "text": "repository root the analyzer scanned"}},
            },
            "results": results,
        }],
    }


def render_sarif(findings: Iterable[AnalysisFinding],
                 rules: Dict[str, type]) -> str:
    """The SARIF log serialized for stdout / artifact upload."""
    return json.dumps(to_sarif(findings, rules), indent=2) + "\n"


def _fail(errors: List[str], where: str, why: str) -> None:
    errors.append(f"{where}: {why}")


def _require(obj: Dict, key: str, typ, errors: List[str],
             where: str) -> object:
    if key not in obj:
        _fail(errors, where, f"missing required property '{key}'")
        return None
    val = obj[key]
    if not isinstance(val, typ):
        _fail(errors, where,
              f"property '{key}' must be {typ.__name__}, "
              f"got {type(val).__name__}")
        return None
    return val


def validate_sarif(log: Dict) -> List[str]:
    """Structurally validate a SARIF 2.1.0 log; return error strings.

    Covers the properties the 2.1.0 schema marks required on the
    objects we emit (sarifLog, run, tool, toolComponent,
    reportingDescriptor, result, location chain) plus the value
    constraints that matter for consumers (version string, 1-based
    region coordinates, ruleIndex in range).  An empty return value
    means valid.
    """
    errors: List[str] = []
    if not isinstance(log, dict):
        return ["log: top level must be an object"]
    version = _require(log, "version", str, errors, "log")
    if version is not None and version != SARIF_VERSION:
        _fail(errors, "log", f"version must be '{SARIF_VERSION}'")
    runs = _require(log, "runs", list, errors, "log")
    if runs is None:
        return errors
    for ri, run in enumerate(runs):
        where = f"runs[{ri}]"
        if not isinstance(run, dict):
            _fail(errors, where, "must be an object")
            continue
        tool = _require(run, "tool", dict, errors, where)
        rule_ids: List[str] = []
        if tool is not None:
            driver = _require(tool, "driver", dict, errors,
                              f"{where}.tool")
            if driver is not None:
                _require(driver, "name", str, errors,
                         f"{where}.tool.driver")
                for di, rule in enumerate(driver.get("rules", [])):
                    rwhere = f"{where}.tool.driver.rules[{di}]"
                    if not isinstance(rule, dict):
                        _fail(errors, rwhere, "must be an object")
                        continue
                    rid = _require(rule, "id", str, errors, rwhere)
                    if rid is not None:
                        rule_ids.append(rid)
        results = run.get("results")
        if results is None:
            continue
        if not isinstance(results, list):
            _fail(errors, where, "'results' must be an array")
            continue
        for fi, res in enumerate(results):
            fwhere = f"{where}.results[{fi}]"
            if not isinstance(res, dict):
                _fail(errors, fwhere, "must be an object")
                continue
            message = _require(res, "message", dict, errors, fwhere)
            if message is not None and not any(
                    k in message for k in ("text", "id")):
                _fail(errors, f"{fwhere}.message",
                      "needs 'text' or 'id'")
            rule_id = res.get("ruleId")
            if rule_id is not None and not isinstance(rule_id, str):
                _fail(errors, fwhere, "'ruleId' must be a string")
            rule_index = res.get("ruleIndex")
            if rule_index is not None:
                if not isinstance(rule_index, int) or isinstance(
                        rule_index, bool) or rule_index < 0:
                    _fail(errors, fwhere,
                          "'ruleIndex' must be a non-negative integer")
                elif rule_index >= len(rule_ids):
                    _fail(errors, fwhere,
                          f"'ruleIndex' {rule_index} out of range for "
                          f"{len(rule_ids)} driver rule(s)")
                elif (isinstance(rule_id, str)
                      and rule_ids[rule_index] != rule_id):
                    _fail(errors, fwhere,
                          f"'ruleIndex' points at "
                          f"'{rule_ids[rule_index]}', not '{rule_id}'")
            level = res.get("level")
            if level is not None and level not in (
                    "none", "note", "warning", "error"):
                _fail(errors, fwhere, f"invalid 'level' {level!r}")
            for li, loc in enumerate(res.get("locations", [])):
                lwhere = f"{fwhere}.locations[{li}]"
                if not isinstance(loc, dict):
                    _fail(errors, lwhere, "must be an object")
                    continue
                phys = loc.get("physicalLocation")
                if phys is None:
                    continue
                if not isinstance(phys, dict):
                    _fail(errors, lwhere,
                          "'physicalLocation' must be an object")
                    continue
                art = phys.get("artifactLocation")
                if isinstance(art, dict):
                    uri = art.get("uri")
                    if uri is not None and not isinstance(uri, str):
                        _fail(errors, f"{lwhere}.artifactLocation",
                              "'uri' must be a string")
                elif art is not None:
                    _fail(errors, lwhere,
                          "'artifactLocation' must be an object")
                region = phys.get("region")
                if isinstance(region, dict):
                    for coord in ("startLine", "startColumn",
                                  "endLine", "endColumn"):
                        val = region.get(coord)
                        if val is None:
                            continue
                        if not isinstance(val, int) or isinstance(
                                val, bool) or val < 1:
                            _fail(errors, f"{lwhere}.region",
                                  f"'{coord}' must be an integer >= 1")
                elif region is not None:
                    _fail(errors, lwhere, "'region' must be an object")
            fps = res.get("partialFingerprints")
            if fps is not None:
                if not isinstance(fps, dict) or not all(
                        isinstance(k, str) and isinstance(v, str)
                        for k, v in fps.items()):
                    _fail(errors, fwhere,
                          "'partialFingerprints' must map strings "
                          "to strings")
    return errors

"""Project-wide symbol table, import graph and call graph.

This is the *structural* half of the cross-module dataflow pass (the
semantic half — the residency lattice and abstract interpretation —
lives in :mod:`repro.analysis.dataflow`).  Given the set of files under
analysis it builds, per module:

- the dotted module name (derived by walking up ``__init__.py``
  packages from the file, so ``src/repro/core/sampling.py`` becomes
  ``repro.core.sampling`` regardless of the invocation directory);
- the import table (``import numpy as np`` / ``from ..backends import
  hostmath`` / ``from .device import GPUExecutor``), with relative
  imports resolved against the module's package;
- every function and method definition (:class:`FunctionInfo`), with
  decorator metadata (``allow_untimed_math``, ``residency``) decoded;
- every class with its base-class expressions, so ``self.method(...)``
  resolves through single-inheritance chains that may cross modules.

Resolution is deliberately *name-based and conservative*: a call that
cannot be resolved to a definition inside the analyzed set produces no
edge (and therefore no finding downstream).  An attribute call
``obj.meth(...)`` on a receiver of unknown class resolves to *all*
methods of that name in the project and downstream consumers join over
the candidates, which keeps the analysis sound-for-findings (a finding
is only emitted on a *definite* fact) at the cost of completeness.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .annotations import ALLOW_UNTIMED_MATH, RESIDENCY, SHAPED

__all__ = [
    "FunctionInfo",
    "ClassInfo",
    "ModuleInfo",
    "SymbolTable",
    "module_name_for",
    "call_name",
]


def module_name_for(path: Path) -> str:
    """Dotted module name of ``path``, walking up ``__init__.py`` roots.

    A file outside any package keeps its bare stem, which is exactly
    what fixture tests want (a flat tmpdir of ``mod_a.py`` /
    ``mod_b.py`` importing each other by stem).
    """
    path = path.resolve()
    parts = [path.stem]
    parent = path.parent
    while (parent / "__init__.py").is_file():
        parts.append(parent.name)
        parent = parent.parent
    if parts[0] == "__init__":
        parts = parts[1:] or [path.parent.name]
    return ".".join(reversed(parts))


def call_name(node: ast.expr) -> str:
    """Dotted source text of a call target (``a.b.c`` or ``""``)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _decorator_call(node: ast.expr) -> Tuple[str, Optional[ast.Call]]:
    if isinstance(node, ast.Call):
        name = call_name(node.func)
        return name.rsplit(".", 1)[-1], node
    name = call_name(node)
    return name.rsplit(".", 1)[-1], None


def _residency_decl(dec: Optional[ast.Call]) -> Dict[str, str]:
    """Decode ``@residency(returns=..., params={...})`` keywords."""
    decl: Dict[str, str] = {}
    if dec is None:
        return decl
    for kw in dec.keywords:
        if kw.arg == "returns" and isinstance(kw.value, ast.Constant) \
                and isinstance(kw.value.value, str):
            decl["return"] = kw.value.value
        elif kw.arg == "params" and isinstance(kw.value, ast.Dict):
            for k, v in zip(kw.value.keys, kw.value.values):
                if (isinstance(k, ast.Constant) and isinstance(k.value, str)
                        and isinstance(v, ast.Constant)
                        and isinstance(v.value, str)):
                    decl[k.value] = v.value
    return decl


def _shape_value(node: ast.expr):
    """Decode one ``@shaped`` value: a symbol string or symbol tuple."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, (ast.Tuple, ast.List)):
        dims = []
        for elt in node.elts:
            if not (isinstance(elt, ast.Constant)
                    and isinstance(elt.value, str)):
                return None
            dims.append(elt.value)
        return tuple(dims)
    return None


def _shaped_decl(dec: Optional[ast.Call]) -> Dict[str, object]:
    """Decode ``@shaped(returns=..., params={...})`` keywords."""
    decl: Dict[str, object] = {}
    if dec is None:
        return decl
    for kw in dec.keywords:
        if kw.arg == "returns":
            value = _shape_value(kw.value)
            if value is not None:
                decl["return"] = value
        elif kw.arg == "params" and isinstance(kw.value, ast.Dict):
            for k, v in zip(kw.value.keys, kw.value.values):
                if isinstance(k, ast.Constant) and isinstance(k.value, str):
                    value = _shape_value(v)
                    if value is not None:
                        decl[k.value] = value
    return decl


class FunctionInfo:
    """One function or method definition plus decoded decorators."""

    __slots__ = ("name", "qualname", "module", "node", "params",
                 "class_name", "untimed", "residency", "shaped",
                 "lineno", "owner")

    def __init__(self, node: ast.AST, module: str,
                 class_name: Optional[str] = None):
        self.node = node
        self.module = module
        self.class_name = class_name
        self.name = node.name
        self.qualname = (f"{class_name}.{node.name}" if class_name
                         else node.name)
        self.lineno = node.lineno
        args = node.args
        self.params: List[str] = (
            [a.arg for a in getattr(args, "posonlyargs", [])]
            + [a.arg for a in args.args])
        self.untimed = False
        self.residency: Dict[str, str] = {}
        self.shaped: Dict[str, object] = {}
        for dec in node.decorator_list:
            name, dec_call = _decorator_call(dec)
            if name == ALLOW_UNTIMED_MATH:
                self.untimed = True
            elif name == RESIDENCY:
                self.residency = _residency_decl(dec_call)
            elif name == SHAPED:
                self.shaped = _shaped_decl(dec_call)

    @property
    def is_method(self) -> bool:
        return self.class_name is not None

    def param_index(self, name: str) -> Optional[int]:
        try:
            return self.params.index(name)
        except ValueError:
            return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FunctionInfo {self.module}:{self.qualname}>"


class ClassInfo:
    """One class definition: bases (as dotted names) and methods."""

    __slots__ = ("name", "module", "bases", "methods", "lineno",
                 "owner")

    def __init__(self, node: ast.ClassDef, module: str):
        self.name = node.name
        self.module = module
        self.lineno = node.lineno
        self.bases = [call_name(b) for b in node.bases if call_name(b)]
        self.methods: Dict[str, FunctionInfo] = {}


class _ModuleScanner(ast.NodeVisitor):
    def __init__(self, info: "ModuleInfo"):
        self.info = info
        self._class_stack: List[ClassInfo] = []
        self._func_depth = 0

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.info.imports[alias.asname or alias.name.split(".")[0]] = \
                alias.name

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        base = self.info.resolve_from(node)
        for alias in node.names:
            if alias.name == "*":
                continue
            target = f"{base}.{alias.name}" if base else alias.name
            self.info.from_imports[alias.asname or alias.name] = target

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if self._func_depth or self._class_stack:
            return  # nested classes are out of model
        cls = ClassInfo(node, self.info.name)
        self.info.classes[cls.name] = cls
        self._class_stack.append(cls)
        for child in node.body:
            self.visit(child)
        self._class_stack.pop()

    def _function(self, node) -> None:
        if self._func_depth:
            return  # nested defs are analyzed as part of their parent
        if self._class_stack:
            cls = self._class_stack[-1]
            fn = FunctionInfo(node, self.info.name, cls.name)
            cls.methods[fn.name] = fn
        else:
            fn = FunctionInfo(node, self.info.name)
            self.info.functions[fn.name] = fn
        self.info.all_functions.append(fn)
        self._func_depth += 1
        for child in node.body:
            self.visit(child)
        self._func_depth -= 1

    visit_FunctionDef = _function
    visit_AsyncFunctionDef = _function

    def visit_Assign(self, node: ast.Assign) -> None:
        if not self._func_depth and not self._class_stack:
            self.info.module_assigns.append(node)
        self.generic_visit(node)


class ModuleInfo:
    """Everything the project pass needs to know about one file."""

    def __init__(self, path: Path, relpath: str, tree: ast.Module):
        self.path = path
        self.relpath = relpath
        self.tree = tree
        self.name = module_name_for(path)
        #: ``import X [as Y]`` → alias -> full dotted module.
        self.imports: Dict[str, str] = {}
        #: ``from M import X [as Y]`` → local name -> dotted target.
        self.from_imports: Dict[str, str] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.all_functions: List[FunctionInfo] = []
        self.module_assigns: List[ast.Assign] = []
        _ModuleScanner(self).visit(tree)
        # Back-references survive dotted-name collisions between loose
        # files (resolution by name prefers first-registered, but every
        # definition still knows its own module).
        for fn in self.all_functions:
            fn.owner = self
        for cls in self.classes.values():
            cls.owner = self

    def resolve_from(self, node: ast.ImportFrom) -> str:
        """Absolute dotted base of a ``from ... import`` statement."""
        if not node.level:
            return node.module or ""
        pkg_parts = self.name.split(".")[:-1]
        drop = node.level - 1
        if drop:
            pkg_parts = pkg_parts[:-drop] if drop <= len(pkg_parts) else []
        base = ".".join(pkg_parts)
        if node.module:
            base = f"{base}.{node.module}" if base else node.module
        return base

    def imported_module(self, dotted: str) -> Optional[str]:
        """Resolve the module a dotted call prefix refers to, if any.

        ``hostmath.norm`` resolves through ``from ..backends import
        hostmath``; ``repro.backends.hostmath.norm`` matches a plain
        ``import``.  Returns the absolute module name or ``None``.
        """
        head = dotted.split(".", 1)[0]
        if head in self.imports:
            return self.imports[head] + dotted[len(head):]
        if head in self.from_imports:
            return self.from_imports[head] + dotted[len(head):]
        return None


class SymbolTable:
    """The project: modules by name, plus cross-module resolution."""

    def __init__(self, modules: Sequence[ModuleInfo]):
        #: Every analyzed module, in input order (colliding dotted
        #: names — e.g. two loose fixture files with the same stem —
        #: are all analyzed; only name-based *resolution* prefers the
        #: first one registered).
        self.all_modules: List[ModuleInfo] = list(modules)
        self.modules: Dict[str, ModuleInfo] = {}
        for m in modules:
            self.modules.setdefault(m.name, m)
        self.by_relpath: Dict[str, ModuleInfo] = {
            m.relpath: m for m in modules}
        #: method name -> every FunctionInfo of that name on any class.
        self._methods_by_name: Dict[str, List[FunctionInfo]] = {}
        for m in modules:
            for cls in m.classes.values():
                for fn in cls.methods.values():
                    self._methods_by_name.setdefault(fn.name, []).append(fn)

    # -- import graph ----------------------------------------------------
    def module_deps(self, mod: ModuleInfo) -> Set[str]:
        """Names of analyzed modules ``mod`` imports (direct edges)."""
        deps: Set[str] = set()
        for target in list(mod.imports.values()) \
                + list(mod.from_imports.values()):
            # `from pkg.mod import name` records pkg.mod.name; strip
            # trailing attribute components until an analyzed module (or
            # package __init__) matches.
            parts = target.split(".")
            for cut in range(len(parts), 0, -1):
                cand = ".".join(parts[:cut])
                if cand in self.modules and cand != mod.name:
                    deps.add(cand)
                    break
        return deps

    def import_graph(self) -> Dict[str, Set[str]]:
        return {name: self.module_deps(m)
                for name, m in self.modules.items()}

    # -- callable resolution ---------------------------------------------
    def resolve_function(self, mod: ModuleInfo,
                         dotted: str) -> Optional[FunctionInfo]:
        """Resolve a plain or module-qualified function call by name."""
        if "." not in dotted:
            if dotted in mod.functions:
                return mod.functions[dotted]
            target = mod.from_imports.get(dotted)
            if target and "." in target:
                owner, leaf = target.rsplit(".", 1)
                owner_mod = self.modules.get(owner)
                if owner_mod:
                    return owner_mod.functions.get(leaf)
            return None
        prefix, leaf = dotted.rsplit(".", 1)
        target = mod.imported_module(prefix)
        if target is None and prefix in self.modules:
            target = prefix
        if target and target in self.modules:
            return self.modules[target].functions.get(leaf)
        return None

    def resolve_class(self, mod: ModuleInfo,
                      dotted: str) -> Optional[ClassInfo]:
        """Resolve a class reference (plain name or imported)."""
        if "." not in dotted:
            if dotted in mod.classes:
                return mod.classes[dotted]
            target = mod.from_imports.get(dotted)
            if target and "." in target:
                owner, leaf = target.rsplit(".", 1)
                owner_mod = self.modules.get(owner)
                if owner_mod:
                    return owner_mod.classes.get(leaf)
            return None
        prefix, leaf = dotted.rsplit(".", 1)
        target = mod.imported_module(prefix)
        if target and target in self.modules:
            return self.modules[target].classes.get(leaf)
        return None

    def resolve_method(self, mod: ModuleInfo, cls: ClassInfo,
                       name: str) -> Optional[FunctionInfo]:
        """Look ``name`` up on ``cls`` and then its base chain."""
        seen: Set[Tuple[str, str]] = set()
        queue: List[Tuple[ModuleInfo, ClassInfo]] = [(mod, cls)]
        while queue:
            owner_mod, owner = queue.pop(0)
            if (owner.module, owner.name) in seen:
                continue
            seen.add((owner.module, owner.name))
            if name in owner.methods:
                return owner.methods[name]
            for base in owner.bases:
                base_cls = self.resolve_class(owner_mod, base)
                if base_cls is not None:
                    queue.append((base_cls.owner, base_cls))
        return None

    def methods_named(self, name: str) -> List[FunctionInfo]:
        """Every method of this name anywhere in the project."""
        return self._methods_by_name.get(name, [])

"""Static analysis for the simulated-GPU executor contract.

The reproduction's performance figures are only as faithful as three
invariants nothing else enforces: every FLOP in :mod:`repro.core` is
charged through an executor (so modeled times follow the K40c rate
models), every charge lands on one of the paper's seven phase-legend
tags (Figures 11-15), and every path stays safe under symbolic
:class:`repro.gpu.SymArray` execution at paper scale.  This package is
the compiler-grade checker for those invariants, plus repo hygiene:

======  =====================================================
RS101   untimed math inside ``repro.core`` (bypasses executor)
RS102   phase tag not in ``repro.gpu.trace.PHASES``
RS103   value-dependent op on ArrayLike without symbolic guard
RS104   ``raise ValueError``/... instead of ``repro.errors``
RS105   legacy ``np.random.*`` bypassing seeded Generators
RS106   missing ``__all__`` / export drift
RS107   bench series bypassing ``attach_series``
RS108   direct ``device.charge`` in the stream-scheduled multi-GPU
        executor (``repro/gpu/multigpu.py``)
RS109   returned ``StreamEvent`` discarded (sync dropped on the floor)
RS110   transfer submit with empty ``deps`` and no ``after_all``
RS111   ``submit``/``submit_group`` without ``reads=``/``writes=``
        race-sanitizer annotations (``repro/gpu/multigpu.py``)
RS112   ``restore()`` fed a dict that is not a ``state()`` snapshot
RS113   stale ``# repro: noqa`` suppressing nothing
RS114   raw ``np.linalg``/``np.fft``/``scipy.linalg`` outside
        ``repro/backends`` (bypasses the pluggable-backend seam)
RS115   device-resident value reaches host-only math without
        ``to_host()`` (cross-module dataflow)
RS116   transfer ping-pong: h2d then d2h with no device kernel in
        between, or re-upload of a device-resident value
RS117   backend handle escapes the executor contract (module
        global, ``@allow_untimed_math`` scope, or public return)
RS118   timed ``charge``/``submit`` reachable from a scope with no
        executor/scheduler accounting
RS119   RNG not derived from ``SamplingConfig.seed`` reaches a
        sampling draw
RS121   charged kernel dimensions disagree with the symbolic shapes
        of the operands actually multiplied
RS122   ``submit``/``submit_group`` race annotation is incomplete
        (missing/empty ``writes=``, or a derived read such as
        ``"B@g0"`` whose base buffer is never written)
RS123   math on a path where the charge is conditional (uncharged
        or double-charged branch in a timed scope)
RS124   asymptotic drift: an executor's statically interpreted
        per-phase FLOP total disagrees with the Figure 5 closed
        forms in :mod:`repro.perfmodel.costs` at reference dims
RS125   async hygiene in ``repro.serve``: blocking call inside an
        ``async def``, un-awaited coroutine, unbounded queue
======  =====================================================

The static concurrency lints (RS109-RS112) pair with the dynamic
happens-before race sanitizer in :mod:`repro.analysis.races`.  The
residency family (RS115-RS119) is *project-wide*: the engine builds a
symbol table and call graph over every file under analysis and runs a
forward abstract interpretation on the host/device residency lattice
(:mod:`repro.analysis.dataflow`), so a value produced in one module
and misused in another is one finding at the sink.  The shape/cost
family (RS121-RS124) rides the same symbol table with a symbolic
shape lattice (:mod:`repro.analysis.shapes`) seeded from ``@shaped``
declarations, and cross-checks the charged cost model against the
paper's closed forms (``repro-bench analyze --audit-costs``).

Run ``python -m repro.analysis src/repro`` (or ``python -m repro.cli
analyze``); see ``docs/static_analysis.md`` for the rule reference,
the ``# repro: noqa RSxxx`` suppression syntax, baselines, the
incremental cache (``--no-cache``/``--cache-dir``), parallel analysis
(``--jobs``), and SARIF export (``--format sarif``).

This ``__init__`` stays import-light (only the finding dataclass and
the :func:`allow_untimed_math` marker) because algorithm modules import
the marker at package-import time; the engine and rules load lazily
when an analysis actually runs.
"""

from __future__ import annotations

from .annotations import allow_untimed_math, residency, shaped
from .findings import (EXIT_CLEAN, EXIT_ERROR, EXIT_FINDINGS,
                       AnalysisFinding)

__all__ = [
    "AnalysisFinding",
    "allow_untimed_math",
    "residency",
    "shaped",
    "analyze_paths",
    "main",
    "EXIT_CLEAN",
    "EXIT_FINDINGS",
    "EXIT_ERROR",
]


def analyze_paths(*args, **kwargs):
    """Lazy proxy for :func:`repro.analysis.engine.analyze_paths`."""
    from .engine import analyze_paths as _impl
    return _impl(*args, **kwargs)


def main(argv=None):
    """Lazy proxy for :func:`repro.analysis.cli.main`."""
    from .cli import main as _impl
    return _impl(argv)

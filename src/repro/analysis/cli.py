"""Command-line front end: ``python -m repro.analysis`` /
``python -m repro.cli analyze``.

Exit codes (the CI contract, see :mod:`repro.analysis.findings`):

- ``0`` — clean, or every finding is covered by the baseline;
- ``1`` — at least one new finding;
- ``2`` — usage or configuration error (bad path, bad rule id,
  malformed baseline).

Output formats: ``text`` (one line per finding), ``json`` (findings +
baseline accounting), ``sarif`` (SARIF 2.1.0 for GitHub code
scanning).  Diagnostics that are not part of the machine-readable
payload (cache statistics) go to stderr so stdout stays byte-stable
for a given tree regardless of cache state or ``--jobs``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import List, Optional

from ..errors import StaticAnalysisError
from .baseline import (DEFAULT_BASELINE, apply_baseline, load_baseline,
                       update_baseline, write_baseline)
from .cache import DEFAULT_CACHE_DIR, AnalysisCache
from .engine import _resolve_rules, all_rules, run_analysis
from .findings import EXIT_CLEAN, EXIT_ERROR, EXIT_FINDINGS
from .sarif import render_sarif

__all__ = ["main", "build_parser"]


def _default_jobs() -> int:
    """``--jobs`` default: the REPRO_ANALYZE_JOBS env var, else 1."""
    raw = os.environ.get("REPRO_ANALYZE_JOBS", "")
    try:
        return max(1, int(raw))
    except ValueError:
        return 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-analyze",
        description="AST-based invariant checker for the simulated-GPU "
                    "executor contract (rules RS101-RS125).")
    parser.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files or directories to scan "
                             "(default: src/repro)")
    parser.add_argument("--select", metavar="RULES", default=None,
                        help="comma-separated rule ids to run "
                             "(default: all)")
    parser.add_argument("--ignore", metavar="RULES", default=None,
                        help="comma-separated rule ids to skip")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text", dest="fmt",
                        help="output format (default: text)")
    parser.add_argument("--jobs", metavar="N", type=int,
                        default=_default_jobs(),
                        help="analyze files in N worker processes "
                             "(default: $REPRO_ANALYZE_JOBS or 1; "
                             "findings order is identical either way)")
    parser.add_argument("--baseline", metavar="PATH",
                        default=DEFAULT_BASELINE,
                        help="baseline JSON of accepted findings "
                             f"(default: {DEFAULT_BASELINE}; silently "
                             "skipped when absent)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline file")
    parser.add_argument("--write-baseline", action="store_true",
                        help="accept the current findings: write them "
                             "to the baseline file and exit 0")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from the current "
                             "findings, pruning entries that no longer "
                             "occur (prints what was dropped), and "
                             "exit 0")
    parser.add_argument("--cache-dir", metavar="DIR",
                        default=DEFAULT_CACHE_DIR,
                        help="incremental cache directory "
                             f"(default: {DEFAULT_CACHE_DIR})")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the incremental cache (forces a "
                             "cold re-analysis of every file)")
    parser.add_argument("--stats", action="store_true",
                        help="print parse/cache statistics to stderr")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule ids and summaries, then "
                             "exit")
    parser.add_argument("--audit-costs", action="store_true",
                        help="three-way cost audit at the fig15 "
                             "configuration: RS124's static per-phase "
                             "FLOP totals vs an instrumented symbolic "
                             "run vs the Figure 5 closed forms "
                             "(exit 1 on drift)")
    return parser


def _split_rules(spec: Optional[str]) -> Optional[List[str]]:
    if spec is None:
        return None
    return [r.strip() for r in spec.split(",") if r.strip()]


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.audit_costs:
        from .audit import main as audit_main
        return audit_main(args.paths)

    registry = all_rules()
    if args.list_rules:
        for rule, cls in registry.items():
            print(f"{rule}  {cls.summary}")
        return EXIT_CLEAN

    cache = None if args.no_cache else AnalysisCache(Path(args.cache_dir))
    try:
        select = _split_rules(args.select)
        ignore = _split_rules(args.ignore)
        wanted = _resolve_rules(registry, select, ignore)
        result = run_analysis(
            [Path(p) for p in args.paths],
            select=select, ignore=ignore,
            jobs=max(1, args.jobs), cache=cache)
        findings = result.findings

        baseline_path = Path(args.baseline)
        if args.write_baseline:
            write_baseline(baseline_path, findings)
            print(f"[wrote {len(findings)} finding(s) to {baseline_path}]")
            return EXIT_CLEAN
        if args.update_baseline:
            added, dropped, kept = update_baseline(baseline_path, findings)
            for fp in dropped:
                print(f"[dropped stale baseline entry {fp}]")
            print(f"[baseline {baseline_path}: {len(added)} added, "
                  f"{len(dropped)} dropped, {len(kept)} kept]")
            return EXIT_CLEAN

        suppressed, stale = 0, []
        if not args.no_baseline and baseline_path.is_file():
            base = load_baseline(baseline_path)
            findings, suppressed, stale = apply_baseline(findings, base)
    except StaticAnalysisError as exc:
        print(f"repro-analyze: error: {exc}", file=sys.stderr)
        return EXIT_ERROR

    if args.stats:
        print(f"[repro-analyze stats: {result.stats.as_dict()}]",
              file=sys.stderr)

    if args.fmt == "sarif":
        ran = {rule: registry[rule] for rule in wanted}
        sys.stdout.write(render_sarif(findings, ran))
    elif args.fmt == "json":
        print(json.dumps({
            "findings": [f.to_dict() for f in findings],
            "baselined": suppressed,
            "stale_baseline_entries": stale,
        }, indent=2))
    else:
        for f in findings:
            print(f.render())
        tail = [f"{len(findings)} finding(s)"]
        if suppressed:
            tail.append(f"{suppressed} baselined")
        if stale:
            tail.append(f"{len(stale)} stale baseline entr"
                        f"{'y' if len(stale) == 1 else 'ies'} "
                        "(regenerate with --write-baseline)")
        print(f"[repro-analyze: {', '.join(tail)}]")

    return EXIT_FINDINGS if findings else EXIT_CLEAN

"""Command-line front end: ``python -m repro.analysis`` /
``python -m repro.cli analyze``.

Exit codes (the CI contract, see :mod:`repro.analysis.findings`):

- ``0`` — clean, or every finding is covered by the baseline;
- ``1`` — at least one new finding;
- ``2`` — usage or configuration error (bad path, bad rule id,
  malformed baseline).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from ..errors import StaticAnalysisError
from .baseline import (DEFAULT_BASELINE, apply_baseline, load_baseline,
                       write_baseline)
from .engine import all_rules, analyze_paths
from .findings import EXIT_CLEAN, EXIT_ERROR, EXIT_FINDINGS

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-analyze",
        description="AST-based invariant checker for the simulated-GPU "
                    "executor contract (rules RS101-RS114).")
    parser.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files or directories to scan "
                             "(default: src/repro)")
    parser.add_argument("--select", metavar="RULES", default=None,
                        help="comma-separated rule ids to run "
                             "(default: all)")
    parser.add_argument("--ignore", metavar="RULES", default=None,
                        help="comma-separated rule ids to skip")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", dest="fmt",
                        help="output format (default: text)")
    parser.add_argument("--baseline", metavar="PATH",
                        default=DEFAULT_BASELINE,
                        help="baseline JSON of accepted findings "
                             f"(default: {DEFAULT_BASELINE}; silently "
                             "skipped when absent)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline file")
    parser.add_argument("--write-baseline", action="store_true",
                        help="accept the current findings: write them "
                             "to the baseline file and exit 0")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule ids and summaries, then "
                             "exit")
    return parser


def _split_rules(spec: Optional[str]) -> Optional[List[str]]:
    if spec is None:
        return None
    return [r.strip() for r in spec.split(",") if r.strip()]


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, cls in all_rules().items():
            print(f"{rule}  {cls.summary}")
        return EXIT_CLEAN

    try:
        findings = analyze_paths(
            [Path(p) for p in args.paths],
            select=_split_rules(args.select),
            ignore=_split_rules(args.ignore))

        baseline_path = Path(args.baseline)
        if args.write_baseline:
            write_baseline(baseline_path, findings)
            print(f"[wrote {len(findings)} finding(s) to {baseline_path}]")
            return EXIT_CLEAN

        suppressed, stale = 0, []
        if not args.no_baseline and baseline_path.is_file():
            base = load_baseline(baseline_path)
            findings, suppressed, stale = apply_baseline(findings, base)
    except StaticAnalysisError as exc:
        print(f"repro-analyze: error: {exc}", file=sys.stderr)
        return EXIT_ERROR

    if args.fmt == "json":
        print(json.dumps({
            "findings": [f.to_dict() for f in findings],
            "baselined": suppressed,
            "stale_baseline_entries": stale,
        }, indent=2))
    else:
        for f in findings:
            print(f.render())
        tail = [f"{len(findings)} finding(s)"]
        if suppressed:
            tail.append(f"{suppressed} baselined")
        if stale:
            tail.append(f"{len(stale)} stale baseline entr"
                        f"{'y' if len(stale) == 1 else 'ies'} "
                        "(regenerate with --write-baseline)")
        print(f"[repro-analyze: {', '.join(tail)}]")

    return EXIT_FINDINGS if findings else EXIT_CLEAN

"""Committed-baseline support.

A baseline is a JSON file recording the fingerprints of known,
accepted findings so a newly introduced checker can land without a
big-bang cleanup, while any *new* violation still fails CI.  The
fingerprint excludes line numbers (see
:meth:`repro.analysis.findings.AnalysisFinding.fingerprint`), so
unrelated edits don't invalidate it; each fingerprint carries a count,
so adding a second identical violation in the same function is still
caught.

Regenerate with ``python -m repro.analysis src/repro --write-baseline``
after an intentional change, and commit the result.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, List, Tuple

from ..errors import StaticAnalysisError
from .findings import AnalysisFinding

__all__ = ["DEFAULT_BASELINE", "load_baseline", "write_baseline",
           "apply_baseline", "update_baseline"]

#: Conventional location, relative to the invocation directory.
DEFAULT_BASELINE = "analysis-baseline.json"

_VERSION = 1


def load_baseline(path: Path) -> Dict[str, int]:
    """Read a baseline file into a fingerprint -> count map."""
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise StaticAnalysisError(f"cannot read baseline {path}: {exc}")
    if not isinstance(data, dict) or data.get("version") != _VERSION:
        raise StaticAnalysisError(
            f"baseline {path} has unsupported format; regenerate with "
            "--write-baseline")
    findings = data.get("findings", {})
    if not isinstance(findings, dict) or not all(
            isinstance(v, int) and v > 0 for v in findings.values()):
        raise StaticAnalysisError(f"baseline {path} is malformed")
    return dict(findings)


def write_baseline(path: Path, findings: List[AnalysisFinding]) -> None:
    """Write the fingerprints of ``findings`` as the new baseline."""
    counts = Counter(f.fingerprint() for f in findings)
    payload = {
        "version": _VERSION,
        "comment": ("accepted pre-existing findings; regenerate with "
                    "`python -m repro.analysis <paths> --write-baseline`"),
        "findings": dict(sorted(counts.items())),
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def update_baseline(path: Path, findings: List[AnalysisFinding],
                    ) -> Tuple[List[str], List[str], List[str]]:
    """Rewrite ``path`` from the current findings, pruning stale entries.

    Unlike :func:`write_baseline` (which unconditionally accepts
    whatever the scan produced), this is the maintenance operation for
    an *existing* baseline: fingerprints that no longer occur are
    dropped, fingerprints still occurring are kept (with refreshed
    counts), and fingerprints not previously baselined are added.

    Returns ``(added, dropped, kept)`` — sorted fingerprint lists the
    CLI prints so the diff of the baseline file is explainable.
    """
    previous: Dict[str, int] = {}
    if path.is_file():
        previous = load_baseline(path)
    current = Counter(f.fingerprint() for f in findings)
    added = sorted(fp for fp in current if fp not in previous)
    dropped = sorted(fp for fp in previous if fp not in current)
    kept = sorted(fp for fp in current if fp in previous)
    write_baseline(path, findings)
    return added, dropped, kept


def apply_baseline(findings: List[AnalysisFinding],
                   baseline: Dict[str, int],
                   ) -> Tuple[List[AnalysisFinding], int, List[str]]:
    """Split findings into (new, n_baselined, stale_fingerprints).

    For each fingerprint, up to the baselined count of occurrences is
    suppressed; anything beyond that is new.  Fingerprints in the
    baseline that no longer occur at all are reported as *stale* so the
    file can be re-tightened (stale entries are informational, not a
    failure).
    """
    budget = dict(baseline)
    new: List[AnalysisFinding] = []
    suppressed = 0
    for f in findings:
        fp = f.fingerprint()
        if budget.get(fp, 0) > 0:
            budget[fp] -= 1
            suppressed += 1
        else:
            new.append(f)
    stale = sorted(fp for fp, remaining in budget.items()
                   if remaining == baseline.get(fp, 0) and remaining > 0)
    return new, suppressed, stale

"""Forward abstract interpretation over the residency lattice.

This is the semantic half of the project pass behind RS115-RS119.  Each
variable is assigned a value from the lattice::

        either            (top: could be on host or device)
       /      \\
     host    device
       \\      /
        unknown           (bottom: nothing observed yet)

``join(host, device) == either`` and ``join(x, unknown) == x``.  Rules
fire only on *definite* facts (a value that is ``device`` on every
path), so merge points give code the benefit of the doubt — that keeps
the pass usable as a CI gate on the whole tree.

Seeds come from three places:

- the transfer intrinsics: any ``*.to_device(x)`` call yields
  ``device`` and any ``*.to_host(x)`` yields ``host``;
- ``@residency(returns=..., params=...)`` declarations
  (:func:`repro.analysis.annotations.residency`), placed on the
  executor ops in :mod:`repro.gpu.device` / :mod:`repro.gpu.multigpu`;
- interprocedural :class:`FunctionSummary` objects computed on demand
  from function bodies, memoized, with cycles in the call graph
  resolved conservatively to ``unknown``.

Alongside residency the same walk carries three taint bits used by the
sibling rules: *backend handles* (RS117), *timed-work submission*
(RS118, propagated over the call graph by a worklist pass) and *RNG
blessing* (RS119: a generator is blessed when its seed expression is
derived from configuration/parameters rather than hard-coded or
absent).

Precision limits, deliberately accepted: flow stops at class
constructors other than the analyzed executors (wrapping a device
array in a result dataclass launders it to ``unknown``), containers
join their elements, and attribute chains inherit the residency of
their base (so ``a.T`` on a device array stays ``device``).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .callgraph import (ClassInfo, FunctionInfo, ModuleInfo, SymbolTable,
                        call_name)

__all__ = [
    "UNKNOWN", "HOST", "DEVICE", "EITHER", "join",
    "AbstractValue", "FunctionSummary", "RawFinding", "ProjectAnalysis",
]

UNKNOWN = "unknown"
HOST = "host"
DEVICE = "device"
EITHER = "either"

#: Attribute names treated as transfer intrinsics wherever they appear.
TO_DEVICE = "to_device"
TO_HOST = "to_host"

#: Call targets whose result is a backend handle (RS117 taint).
_BACKEND_FACTORIES = {"resolve_backend", "get_default_backend",
                      "make_backend"}

#: Call targets constructing an RNG (RS119 taint); ``make_rng`` is the
#: backend hook, ``default_rng`` the raw numpy constructor.
_RNG_FACTORIES = {"default_rng", "make_rng"}

#: RNG methods that draw samples (the RS119 sink set).
_RNG_DRAWS = {"standard_normal", "normal", "random", "choice",
              "integers", "permutation", "uniform"}

#: Method calls that submit modeled (timed) work — the direct RS118
#: facts, gated to stream/device modules by the caller.
_TIMED_SUBMITTERS = {"charge", "submit", "submit_group"}

#: Host-only sinks by module: calls resolving into these modules
#: require host operands.
_HOST_MATH_MODULES = ("repro.backends.hostmath",)

#: numpy reductions that read array contents on the host when applied
#: to a device-resident value.
_HOST_READS = {"float", "bool", "int", "print", "len", "item", "tolist"}

#: Attributes that are metadata, resident on the host for any array.
_METADATA_ATTRS = {"shape", "ndim", "size", "dtype", "nbytes", "flags",
                   "itemsize"}


def join(a: str, b: str) -> str:
    if a == b:
        return a
    if a == UNKNOWN:
        return b
    if b == UNKNOWN:
        return a
    return EITHER


class AbstractValue:
    """Residency plus taint bits for one abstract value."""

    __slots__ = ("res", "backend", "rng", "fresh_upload", "origin")

    def __init__(self, res: str = UNKNOWN, backend: bool = False,
                 rng: Optional[str] = None, fresh_upload: bool = False,
                 origin: Optional[ast.AST] = None):
        self.res = res
        self.backend = backend
        #: ``None`` (not an RNG), ``"blessed"``, ``"unblessed"`` or
        #: ``"mixed"`` (joined; benefit of the doubt).
        self.rng = rng
        #: True right after ``to_device`` with no kernel use yet (RS116).
        self.fresh_upload = fresh_upload
        #: The AST node that made this value device-resident / an RNG —
        #: reported as the *source* in finding messages.
        self.origin = origin

    def joined(self, other: "AbstractValue") -> "AbstractValue":
        rng = self.rng if self.rng == other.rng else (
            None if self.rng is None and other.rng is None else "mixed")
        res = join(self.res, other.res)
        origin = self.origin if res == self.res else other.origin
        return AbstractValue(
            res=res,
            backend=self.backend or other.backend,
            rng=rng,
            fresh_upload=self.fresh_upload and other.fresh_upload,
            origin=origin or self.origin or other.origin)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        bits = [self.res]
        if self.backend:
            bits.append("backend")
        if self.rng:
            bits.append(f"rng:{self.rng}")
        return f"<AV {' '.join(bits)}>"


class FunctionSummary:
    """What a callee does to its arguments and return value."""

    __slots__ = ("returns", "returns_param", "param_host_sinks",
                 "param_rng_sinks", "returns_backend", "returns_rng",
                 "declared", "in_progress")

    def __init__(self) -> None:
        self.returns = UNKNOWN
        #: Index of the parameter returned unchanged, if the return
        #: residency should be the argument's (identity-ish callees).
        self.returns_param: Optional[int] = None
        #: Parameter indices that reach a host-only sink in the body.
        self.param_host_sinks: Set[int] = set()
        #: Parameter indices used as an RNG for sampling draws.
        self.param_rng_sinks: Set[int] = set()
        self.returns_backend = False
        self.returns_rng: Optional[str] = None
        self.declared: Dict[str, str] = {}
        self.in_progress = False


class RawFinding:
    """A project-pass finding before per-file noqa filtering."""

    __slots__ = ("rule", "relpath", "line", "col", "message", "context")

    def __init__(self, rule: str, relpath: str, line: int, col: int,
                 message: str, context: str):
        self.rule = rule
        self.relpath = relpath
        self.line = line
        self.col = col
        self.message = message
        self.context = context

    def key(self) -> Tuple:
        return (self.rule, self.relpath, self.line, self.col, self.message)


def _describe(node: Optional[ast.AST]) -> str:
    if node is None:
        return "an earlier device op"
    name = call_name(node.func) if isinstance(node, ast.Call) else ""
    where = f"line {getattr(node, 'lineno', '?')}"
    return f"{name or 'a device op'} at {where}"


class ProjectAnalysis:
    """Runs the residency pass over a :class:`SymbolTable`.

    Usage: construct, call :meth:`run`, then read ``findings_by_file``
    (relpath -> list of :class:`RawFinding`).  The engine feeds those
    through each file's noqa table via the per-file RS115-RS119
    checkers in :mod:`repro.analysis.rules_residency`.
    """

    def __init__(self, table: SymbolTable):
        self.table = table
        self._summaries: Dict[Tuple[str, str], FunctionSummary] = {}
        self._timed_direct: Set[Tuple[str, str]] = set()
        self._call_edges: Dict[Tuple[str, str],
                               Set[Tuple[str, str]]] = {}
        self._timed: Set[Tuple[str, str]] = set()
        self.findings: List[RawFinding] = []
        self._seen_keys: Set[Tuple] = set()

    # -- public ----------------------------------------------------------
    def run(self) -> "ProjectAnalysis":
        # Pass 1: summaries (and call edges + direct timed facts) for
        # every function, then close timed-submission over the graph.
        for mod in self.table.all_modules:
            for fn in mod.all_functions:
                self.summary_of(fn)
        self._close_timed()
        # Pass 2: re-walk every function and the module level, emitting
        # findings now that summaries and timed closure are stable.
        for mod in self.table.all_modules:
            for fn in mod.all_functions:
                _FunctionFlow(self, mod, fn, emit=True).analyze()
            _ModuleFlow(self, mod).analyze()
        self.findings.sort(key=lambda f: (f.relpath, f.line, f.rule, f.col))
        return self

    @property
    def findings_by_file(self) -> Dict[str, List[RawFinding]]:
        out: Dict[str, List[RawFinding]] = {}
        for f in self.findings:
            out.setdefault(f.relpath, []).append(f)
        return out

    # -- summaries -------------------------------------------------------
    def summary_of(self, fn: FunctionInfo) -> FunctionSummary:
        key = (fn.module, fn.qualname)
        summ = self._summaries.get(key)
        if summ is not None:
            if summ.in_progress:
                # Call-graph cycle: answer conservatively with the
                # declaration only.
                return summ
            return summ
        summ = FunctionSummary()
        summ.declared = dict(fn.residency)
        if "return" in summ.declared:
            summ.returns = summ.declared["return"]
        summ.in_progress = True
        self._summaries[key] = summ
        _FunctionFlow(self, fn.owner, fn, emit=False).analyze()
        summ.in_progress = False
        return summ

    # -- timed-work closure (RS118) --------------------------------------
    def note_call_edge(self, caller: Tuple[str, str],
                       callee: FunctionInfo) -> None:
        self._call_edges.setdefault(caller, set()).add(
            (callee.module, callee.qualname))

    def note_timed_direct(self, fn_key: Tuple[str, str]) -> None:
        self._timed_direct.add(fn_key)

    def _close_timed(self) -> None:
        self._timed = set(self._timed_direct)
        # Reverse edges once, then worklist.
        rev: Dict[Tuple[str, str], Set[Tuple[str, str]]] = {}
        for caller, callees in self._call_edges.items():
            for callee in callees:
                rev.setdefault(callee, set()).add(caller)
        work = list(self._timed)
        while work:
            fn_key = work.pop()
            for caller in rev.get(fn_key, ()):
                if caller not in self._timed:
                    self._timed.add(caller)
                    work.append(caller)

    def submits_timed(self, fn: FunctionInfo) -> bool:
        return (fn.module, fn.qualname) in self._timed

    # -- emission --------------------------------------------------------
    def emit(self, rule: str, mod: ModuleInfo, node: ast.AST,
             message: str, context: str) -> None:
        raw = RawFinding(rule, mod.relpath,
                         getattr(node, "lineno", 1),
                         getattr(node, "col_offset", 0),
                         message, context)
        if raw.key() in self._seen_keys:
            return
        self._seen_keys.add(raw.key())
        self.findings.append(raw)


class _FlowBase(ast.NodeVisitor):
    """Shared expression evaluation for function and module flows."""

    def __init__(self, project: ProjectAnalysis, mod: ModuleInfo,
                 emit: bool):
        self.project = project
        self.mod = mod
        self.do_emit = emit
        self.env: Dict[str, AbstractValue] = {}
        self.context = "<module>"
        self.untimed = False

    # Subclasses override ------------------------------------------------
    def self_attr(self, name: str) -> Optional[AbstractValue]:
        return None

    def record_return(self, value: AbstractValue,
                      node: ast.Return) -> None:
        pass

    def fn_key(self) -> Optional[Tuple[str, str]]:
        return None

    # -- emission helpers ------------------------------------------------
    def emit(self, rule: str, node: ast.AST, message: str) -> None:
        if self.do_emit:
            self.project.emit(rule, self.mod, node, message, self.context)

    # -- the evaluator ---------------------------------------------------
    def eval(self, node: Optional[ast.expr]) -> AbstractValue:
        if node is None:
            return AbstractValue()
        method = getattr(self, "_eval_" + type(node).__name__, None)
        if method is not None:
            return method(node)
        return AbstractValue()

    def _eval_Name(self, node: ast.Name) -> AbstractValue:
        return self.env.get(node.id, AbstractValue())

    def _eval_Attribute(self, node: ast.Attribute) -> AbstractValue:
        if isinstance(node.value, ast.Name) and node.value.id == "self":
            av = self.self_attr(node.attr)
            if av is not None:
                return av
            return AbstractValue()
        # Metadata (shape, dtype, ...) lives host-side even for a
        # device array: reading it is free and never an RS115 sink.
        if node.attr in _METADATA_ATTRS:
            return AbstractValue(res=HOST)
        # ``a.T`` / ``a.real`` keep the residency of ``a``; drop taints.
        base = self.eval(node.value)
        return AbstractValue(res=base.res, origin=base.origin)

    def _eval_Subscript(self, node: ast.Subscript) -> AbstractValue:
        base = self.eval(node.value)
        return AbstractValue(res=base.res, origin=base.origin)

    def _eval_BinOp(self, node: ast.BinOp) -> AbstractValue:
        left, right = self.eval(node.left), self.eval(node.right)
        res = join(left.res, right.res)
        origin = left.origin if left.res == DEVICE else right.origin
        return AbstractValue(res=res, origin=origin)

    def _eval_UnaryOp(self, node: ast.UnaryOp) -> AbstractValue:
        base = self.eval(node.operand)
        return AbstractValue(res=base.res, origin=base.origin)

    def _eval_BoolOp(self, node: ast.BoolOp) -> AbstractValue:
        out = self.eval(node.values[0])
        for v in node.values[1:]:
            out = out.joined(self.eval(v))
        return out

    def _eval_IfExp(self, node: ast.IfExp) -> AbstractValue:
        self._check_host_read(node.test)
        return self.eval(node.body).joined(self.eval(node.orelse))

    def _eval_Compare(self, node: ast.Compare) -> AbstractValue:
        # Identity tests (``x is None``) compare references, not
        # contents — no host read happens.
        if all(isinstance(op, (ast.Is, ast.IsNot)) for op in node.ops):
            for operand in [node.left] + list(node.comparators):
                self.eval(operand)
            return AbstractValue(res=HOST)
        for operand in [node.left] + list(node.comparators):
            av = self.eval(operand)
            if av.res == DEVICE:
                self.emit(
                    "RS115", node,
                    "comparison reads a device-resident value "
                    f"(from {_describe(av.origin)}) on the host; "
                    "download it with to_host() first")
        return AbstractValue(res=HOST)

    def _eval_Tuple(self, node: ast.Tuple) -> AbstractValue:
        out = AbstractValue()
        for elt in node.elts:
            out = out.joined(self.eval(elt))
        return out

    _eval_List = _eval_Tuple
    _eval_Set = _eval_Tuple

    def _eval_Starred(self, node: ast.Starred) -> AbstractValue:
        return self.eval(node.value)

    def _eval_NamedExpr(self, node) -> AbstractValue:
        value = self.eval(node.value)
        if isinstance(node.target, ast.Name):
            self.env[node.target.id] = value
        return value

    def _eval_Call(self, node: ast.Call) -> AbstractValue:
        dotted = call_name(node.func)
        leaf = dotted.rsplit(".", 1)[-1] if dotted else ""
        args = [self.eval(a) for a in node.args]
        kwargs = {kw.arg: self.eval(kw.value) for kw in node.keywords
                  if kw.arg}

        # Timed-submission direct fact (RS118).  ``.charge``/``.submit``
        # is only a scheduler verb in modules that plausibly hold one
        # (under repro/gpu/ or importing the stream scheduler) — in a
        # random module ``pool.submit`` is concurrent.futures.
        if leaf in _TIMED_SUBMITTERS and isinstance(node.func,
                                                    ast.Attribute) \
                and self._in_timed_scope_module():
            key = self.fn_key()
            if key is not None:
                self.project.note_timed_direct(key)
                if self.untimed:
                    self._flag_untimed_reach(node, leaf)
            else:
                self._flag_untimed_reach(node, leaf)

        # Transfer intrinsics -------------------------------------------
        if leaf == TO_HOST and isinstance(node.func, ast.Attribute):
            if args and args[0].fresh_upload:
                self.emit(
                    "RS116", node,
                    "transfer ping-pong: value uploaded by "
                    f"{_describe(args[0].origin)} is downloaded again "
                    "with no device kernel in between")
            return AbstractValue(res=HOST)
        if leaf == TO_DEVICE and isinstance(node.func, ast.Attribute):
            if args and args[0].res == DEVICE:
                self.emit(
                    "RS116", node,
                    "re-upload: operand is already device-resident "
                    f"(from {_describe(args[0].origin)}); dropping the "
                    "redundant to_device saves an h2d transfer")
            return AbstractValue(res=DEVICE, fresh_upload=True,
                                 origin=node)

        # RNG construction ----------------------------------------------
        if leaf in _RNG_FACTORIES:
            seed = node.args[0] if node.args else None
            for kw in node.keywords:
                if kw.arg == "seed":
                    seed = kw.value
            blessed = self._seed_blessed(seed)
            return AbstractValue(
                rng="blessed" if blessed else "unblessed", origin=node)

        # Backend factories ---------------------------------------------
        if leaf in _BACKEND_FACTORIES:
            return AbstractValue(backend=True, origin=node)

        # RNG draw methods (RS119 sink) ---------------------------------
        if leaf in _RNG_DRAWS and isinstance(node.func, ast.Attribute):
            recv = self.eval(node.func.value)
            if recv.rng == "unblessed":
                self.emit(
                    "RS119", node,
                    f"sampling draw .{leaf}() uses an RNG constructed "
                    f"by {_describe(recv.origin)} that is not derived "
                    "from SamplingConfig.seed; thread the configured "
                    "seed through instead")
            # A draw result is a fresh host-side array.
            return AbstractValue()

        # hostmath.* and other host-only sinks --------------------------
        if self._is_hostmath_call(dotted):
            self._check_args_host(node, args, kwargs, f"{dotted}()")
            return AbstractValue(res=HOST)
        if leaf in _HOST_READS and isinstance(node.func, ast.Name):
            for av in args:
                if av.res == DEVICE:
                    self.emit(
                        "RS115", node,
                        f"{leaf}() reads a device-resident value (from "
                        f"{_describe(av.origin)}) on the host; download "
                        "it with to_host() first")
            return AbstractValue(res=HOST)
        if leaf in ("item", "tolist") and isinstance(node.func,
                                                     ast.Attribute):
            recv = self.eval(node.func.value)
            if recv.res == DEVICE:
                self.emit(
                    "RS115", node,
                    f".{leaf}() reads a device-resident value (from "
                    f"{_describe(recv.origin)}) on the host; download "
                    "it with to_host() first")
            return AbstractValue(res=HOST)

        # Resolved project callees --------------------------------------
        callee = self._resolve_callee(node)
        if callee:
            return self._apply_summaries(node, callee, args, kwargs)

        # Any device kernel consumes freshness of its operands.
        for av in args:
            av.fresh_upload = False
        for av in kwargs.values():
            av.fresh_upload = False
        return AbstractValue()

    # -- call helpers ----------------------------------------------------
    def _resolve_callee(self, node: ast.Call) -> List[FunctionInfo]:
        dotted = call_name(node.func)
        if not dotted:
            return []
        if dotted.startswith("self.") and dotted.count(".") == 1:
            fn = self._resolve_self_method(dotted.split(".")[1])
            return [fn] if fn else []
        fn = self.project.table.resolve_function(self.mod, dotted)
        if fn is not None:
            return [fn]
        if "." in dotted:
            # Unknown receiver: join over every method of this name.
            leaf = dotted.rsplit(".", 1)[-1]
            head = dotted.split(".", 1)[0]
            if head in self.mod.imports or head in self.mod.from_imports:
                # Module-qualified call that didn't resolve — not a
                # method on an object; no candidates.
                if self.mod.imported_module(
                        dotted.rsplit(".", 1)[0]) is not None:
                    return []
            return self.project.table.methods_named(leaf)
        return []

    def _resolve_self_method(self, name: str) -> Optional[FunctionInfo]:
        return None

    def _apply_summaries(self, node: ast.Call,
                         candidates: List[FunctionInfo],
                         args: List[AbstractValue],
                         kwargs: Dict[str, AbstractValue],
                         ) -> AbstractValue:
        exact = len(candidates) == 1
        returns: Optional[AbstractValue] = None
        ret_ress: List[str] = []
        for fn in candidates:
            summ = self.project.summary_of(fn)
            key = self.fn_key()
            # Edges into the timed-work closure: always for an exact
            # resolution; for ambiguous method-name matches only in
            # modules that plausibly talk to a scheduler, so a stray
            # ``pool.submit`` elsewhere cannot poison the closure.
            if key is not None and (exact
                                    or self._in_timed_scope_module()):
                self.project.note_call_edge(key, fn)
            # RS118: timed work reached from an untimed scope.
            if self.project.submits_timed(fn) and (
                    self.untimed or key is None) and (
                    exact or self._in_timed_scope_module()):
                self._flag_untimed_reach(node, fn.qualname)
            # Align arguments with parameters (skip self for methods).
            offset = 1 if fn.is_method else 0
            aligned: Dict[int, AbstractValue] = {}
            for i, av in enumerate(args):
                aligned[i + offset] = av
            for name, av in kwargs.items():
                idx = fn.param_index(name)
                if idx is not None:
                    aligned[idx] = av
            if exact:
                # Call-site obligations are only checked against an
                # unambiguous callee: name-matched candidate sets must
                # not convict anyone.
                self._check_call_site(node, fn, summ, aligned)
            ret = AbstractValue(res=summ.returns,
                                backend=summ.returns_backend,
                                rng=summ.returns_rng,
                                origin=node if summ.returns == DEVICE
                                else None)
            if summ.returns_param is not None:
                passed = aligned.get(summ.returns_param)
                if passed is not None:
                    ret = AbstractValue(res=passed.res,
                                        backend=passed.backend,
                                        rng=passed.rng,
                                        origin=passed.origin)
            ret_ress.append(ret.res)
            returns = ret if returns is None else returns.joined(ret)
        for av in args:
            av.fresh_upload = False
        for av in kwargs.values():
            av.fresh_upload = False
        if returns is None:
            return AbstractValue()
        if not exact:
            # Ambiguous resolution yields a definite residency only
            # when every candidate agrees; a disagreement (or any
            # unknown candidate) demotes to either/unknown so no rule
            # can fire on a guessed receiver class.
            agreed = ret_ress[0] if len(set(ret_ress)) == 1 else None
            if agreed in (HOST, DEVICE):
                return AbstractValue(
                    res=agreed,
                    origin=node if agreed == DEVICE else None)
            return AbstractValue(
                res=UNKNOWN if all(r == UNKNOWN for r in ret_ress)
                else EITHER)
        return returns

    def _check_call_site(self, node: ast.Call, fn: FunctionInfo,
                         summ: FunctionSummary,
                         aligned: Dict[int, AbstractValue]) -> None:
        for idx, av in aligned.items():
            pname = fn.params[idx] if idx < len(fn.params) else f"#{idx}"
            if av.res == DEVICE and (
                    idx in summ.param_host_sinks
                    or summ.declared.get(pname) == HOST):
                self.emit(
                    "RS115", node,
                    f"device-resident argument (from "
                    f"{_describe(av.origin)}) flows into host-only "
                    f"math via parameter '{pname}' of {fn.qualname}(); "
                    "download it with to_host() first")
            if av.rng == "unblessed" and idx in summ.param_rng_sinks:
                self.emit(
                    "RS119", node,
                    f"RNG constructed by {_describe(av.origin)} (not "
                    "derived from SamplingConfig.seed) reaches sampling "
                    f"inside {fn.qualname}() via parameter '{pname}'")
            if av.backend and fn.untimed:
                self.emit(
                    "RS117", node,
                    "backend handle passed into @allow_untimed_math "
                    f"function {fn.qualname}(); untimed diagnostics "
                    "must not drive backend kernels directly")

    def _flag_untimed_reach(self, node: ast.Call, callee: str) -> None:
        where = ("module level" if self.context == "<module>"
                 else "an @allow_untimed_math scope")
        self.emit(
            "RS118", node,
            f"call to {callee}() submits modeled (timed) work from "
            f"{where}, where no executor/scheduler is in scope to "
            "account for it")

    # -- sink helpers ----------------------------------------------------
    def _is_hostmath_call(self, dotted: str) -> bool:
        if "." not in dotted:
            target = self.mod.from_imports.get(dotted, "")
            return any(target.startswith(m + ".")
                       for m in _HOST_MATH_MODULES)
        prefix = dotted.rsplit(".", 1)[0]
        target = self.mod.imported_module(prefix) or prefix
        return target in _HOST_MATH_MODULES

    def _check_args_host(self, node: ast.Call,
                         args: List[AbstractValue],
                         kwargs: Dict[str, AbstractValue],
                         what: str) -> None:
        for av in list(args) + list(kwargs.values()):
            if av.res == DEVICE:
                self.emit(
                    "RS115", node,
                    f"device-resident value (from {_describe(av.origin)})"
                    f" passed to host-only {what}; download it with "
                    "to_host() first")

    def _check_host_read(self, test: ast.expr) -> None:
        av = self.eval(test)
        if av.res == DEVICE:
            self.emit(
                "RS115", test,
                "branch condition reads a device-resident value (from "
                f"{_describe(av.origin)}) on the host; download it with "
                "to_host() first")

    def _seed_blessed(self, seed: Optional[ast.expr]) -> bool:
        """Hard-coded or absent seeds are unblessed; anything derived
        from parameters, attributes or other expressions gets the
        benefit of the doubt (``SamplingConfig.seed`` flows in as a
        plain name or attribute)."""
        if seed is None:
            return False
        if isinstance(seed, ast.Constant):
            return False
        return True

    def _in_timed_scope_module(self) -> bool:
        """Direct RS118 facts are gated to modules that plausibly hold
        a scheduler/executor: under ``repro/gpu/`` or importing the
        stream scheduler.  Elsewhere ``submit`` is just a name."""
        if "repro/gpu/" in self.mod.relpath:
            return True
        targets = set(self.mod.imports.values()) | set(
            self.mod.from_imports.values())
        return any(t == "repro.gpu.streams"
                   or t.startswith("repro.gpu.streams.")
                   for t in targets)

    # -- statement walking -----------------------------------------------
    def exec_body(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self.exec_stmt(stmt)

    def exec_stmt(self, stmt: ast.stmt) -> None:
        handler = getattr(self, "_stmt_" + type(stmt).__name__, None)
        if handler is not None:
            handler(stmt)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef, ast.Import,
                               ast.ImportFrom)):
            pass  # definitions analyzed separately; imports structural
        else:
            # Fallback: evaluate nested expressions for their effects.
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.eval(child)

    def _assign_target(self, target: ast.expr,
                       value: AbstractValue) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._assign_target(elt, AbstractValue(
                    res=value.res, backend=value.backend, rng=value.rng,
                    origin=value.origin))
        elif isinstance(target, ast.Attribute):
            self.assign_attr(target, value)

    def assign_attr(self, target: ast.Attribute,
                    value: AbstractValue) -> None:
        pass

    def _stmt_Assign(self, stmt: ast.Assign) -> None:
        value = self.eval(stmt.value)
        for target in stmt.targets:
            self._assign_target(target, value)

    def _stmt_AnnAssign(self, stmt: ast.AnnAssign) -> None:
        if stmt.value is not None:
            self._assign_target(stmt.target, self.eval(stmt.value))

    def _stmt_AugAssign(self, stmt: ast.AugAssign) -> None:
        value = self.eval(stmt.value)
        if isinstance(stmt.target, ast.Name):
            prev = self.env.get(stmt.target.id, AbstractValue())
            self.env[stmt.target.id] = prev.joined(value)

    def _stmt_Expr(self, stmt: ast.Expr) -> None:
        self.eval(stmt.value)

    def _stmt_Return(self, stmt: ast.Return) -> None:
        value = self.eval(stmt.value)
        self.record_return(value, stmt)

    def _stmt_If(self, stmt: ast.If) -> None:
        self._check_host_read(stmt.test)
        before = dict(self.env)
        self.exec_body(stmt.body)
        after_body = self.env
        self.env = before
        self.exec_body(stmt.orelse)
        self._merge_env(after_body)

    def _stmt_While(self, stmt: ast.While) -> None:
        self._check_host_read(stmt.test)
        self._loop_body(stmt.body)
        self.exec_body(stmt.orelse)

    def _stmt_For(self, stmt: ast.For) -> None:
        iterable = self.eval(stmt.iter)
        self._assign_target(stmt.target, AbstractValue(
            res=iterable.res, origin=iterable.origin))
        self._loop_body(stmt.body)
        self.exec_body(stmt.orelse)

    def _loop_body(self, body: Sequence[ast.stmt]) -> None:
        # Two iterations: the second sees loop-carried values, which is
        # enough for a join-based analysis without a full fixpoint.
        before = dict(self.env)
        self.exec_body(body)
        self.exec_body(body)
        self._merge_env(before)

    def _stmt_With(self, stmt: ast.With) -> None:
        for item in stmt.items:
            value = self.eval(item.context_expr)
            if item.optional_vars is not None:
                self._assign_target(item.optional_vars, value)
        self.exec_body(stmt.body)

    def _stmt_Try(self, stmt: ast.Try) -> None:
        self.exec_body(stmt.body)
        for handler in stmt.handlers:
            self.exec_body(handler.body)
        self.exec_body(stmt.orelse)
        self.exec_body(stmt.finalbody)

    def _stmt_Assert(self, stmt: ast.Assert) -> None:
        self._check_host_read(stmt.test)

    def _merge_env(self, other: Dict[str, AbstractValue]) -> None:
        for name, av in other.items():
            if name in self.env:
                self.env[name] = self.env[name].joined(av)
            else:
                self.env[name] = av


class _FunctionFlow(_FlowBase):
    """Abstract interpretation of one function body."""

    def __init__(self, project: ProjectAnalysis, mod: ModuleInfo,
                 fn: FunctionInfo, emit: bool):
        super().__init__(project, mod, emit)
        self.fn = fn
        self.context = fn.qualname
        self.untimed = fn.untimed
        self.cls: Optional[ClassInfo] = (
            mod.classes.get(fn.class_name) if fn.class_name else None)
        self._return_values: List[Tuple[AbstractValue, ast.Return]] = []
        for i, name in enumerate(fn.params):
            declared = fn.residency.get(name)
            self.env[name] = AbstractValue(res=declared or UNKNOWN)
        self._self_attrs: Optional[Dict[str, AbstractValue]] = None

    def fn_key(self) -> Optional[Tuple[str, str]]:
        return (self.fn.module, self.fn.qualname)

    def analyze(self) -> None:
        self.exec_body(self.fn.node.body)
        self._finish_summary()

    # -- self attributes -------------------------------------------------
    def self_attr(self, name: str) -> Optional[AbstractValue]:
        if self.cls is None:
            return None
        if name == "backend":
            return AbstractValue(backend=True)
        if name == "rng":
            # Executor RNGs come from backend.make_rng(seed) with the
            # configured seed: blessed by construction.
            return AbstractValue(rng="blessed")
        if self._self_attrs is None:
            self._self_attrs = self._collect_init_attrs()
        return self._self_attrs.get(name)

    def _collect_init_attrs(self) -> Dict[str, AbstractValue]:
        """Shallow scan of ``__init__`` for rng/backend-typed attrs."""
        out: Dict[str, AbstractValue] = {}
        init = self.project.table.resolve_method(
            self.mod, self.cls, "__init__") if self.cls else None
        if init is None or init.qualname == self.fn.qualname:
            return out
        for stmt in ast.walk(init.node):
            if not isinstance(stmt, ast.Assign):
                continue
            for target in stmt.targets:
                if (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                        and isinstance(stmt.value, ast.Call)):
                    leaf = call_name(stmt.value.func).rsplit(".", 1)[-1]
                    if leaf in _RNG_FACTORIES:
                        seed = stmt.value.args[0] if stmt.value.args \
                            else None
                        for kw in stmt.value.keywords:
                            if kw.arg == "seed":
                                seed = kw.value
                        out[target.attr] = AbstractValue(
                            rng="blessed" if self._seed_blessed(seed)
                            else "unblessed", origin=stmt.value)
                    elif leaf in _BACKEND_FACTORIES:
                        out[target.attr] = AbstractValue(backend=True)
        return out

    def _resolve_self_method(self, name: str) -> Optional[FunctionInfo]:
        if self.cls is None:
            return None
        return self.project.table.resolve_method(self.mod, self.cls, name)

    # -- returns ---------------------------------------------------------
    def record_return(self, value: AbstractValue,
                      node: ast.Return) -> None:
        self._return_values.append((value, node))
        declared = self.fn.residency.get("return")
        if declared == HOST and value.res == DEVICE:
            self.emit(
                "RS115", node,
                f"{self.fn.qualname}() is declared "
                "@residency(returns=\"host\") but returns a "
                f"device-resident value (from {_describe(value.origin)});"
                " download it with to_host() before returning")
        if value.backend and not self.fn.name.startswith("_") \
                and self.cls is None \
                and "repro/backends/" not in self.mod.relpath:
            self.emit(
                "RS117", self.fn.node if self.do_emit else node,
                f"public function {self.fn.qualname}() returns a "
                "backend handle across the repro.backends boundary; "
                "keep handles inside the executor contract")

    def _finish_summary(self) -> None:
        key = (self.fn.module, self.fn.qualname)
        summ = self.project._summaries.get(key)
        if summ is None or self.do_emit:
            return
        # Return residency: declaration wins; otherwise join observed.
        if "return" not in summ.declared and self._return_values:
            res = self._return_values[0][0].res
            backend = False
            rng = self._return_values[0][0].rng
            for value, _ in self._return_values[1:]:
                res = join(res, value.res)
                rng = rng if rng == value.rng else "mixed"
            for value, _ in self._return_values:
                backend = backend or value.backend
            summ.returns = res
            summ.returns_backend = backend
            summ.returns_rng = rng
            summ.returns_param = self._identity_param()
        # Parameter sinks: which params reached host-only math / draws.
        for i, name in enumerate(self.fn.params):
            if name in self._param_host_sink_names:
                summ.param_host_sinks.add(i)
            if name in self._param_rng_sink_names:
                summ.param_rng_sinks.add(i)

    def _identity_param(self) -> Optional[int]:
        if len(self._return_values) != 1:
            return None
        node = self._return_values[0][1].value
        if isinstance(node, ast.Name):
            return self.fn.param_index(node.id)
        return None

    # Track parameter names that hit sinks during the summary pass.
    @property
    def _param_host_sink_names(self) -> Set[str]:
        return getattr(self, "_phsn", set())

    @property
    def _param_rng_sink_names(self) -> Set[str]:
        return getattr(self, "_prsn", set())

    def _note_param_sink(self, expr: ast.expr, kind: str) -> None:
        if isinstance(expr, ast.Name) and expr.id in self.fn.params:
            attr = "_phsn" if kind == "host" else "_prsn"
            names = getattr(self, attr, None)
            if names is None:
                names = set()
                setattr(self, attr, names)
            names.add(expr.id)

    # Override sink checks to also record parameter flow.
    def _check_args_host(self, node, args, kwargs, what) -> None:
        super()._check_args_host(node, args, kwargs, what)
        for expr in list(node.args) + [kw.value for kw in node.keywords]:
            self._note_param_sink(expr, "host")

    def _eval_Call(self, node: ast.Call) -> AbstractValue:
        dotted = call_name(node.func)
        leaf = dotted.rsplit(".", 1)[-1] if dotted else ""
        # RNG draw on a parameter → this param is an RNG sink.
        if leaf in _RNG_DRAWS and isinstance(node.func, ast.Attribute):
            self._note_param_sink(node.func.value, "rng")
        return super()._eval_Call(node)


def _is_main_guard(test: ast.expr) -> bool:
    """True for ``__name__ == "__main__"`` entry-point guards."""
    return (isinstance(test, ast.Compare)
            and isinstance(test.left, ast.Name)
            and test.left.id == "__name__")


class _ModuleFlow(_FlowBase):
    """Module-level statements: RS117 globals and RS118 toplevel calls."""

    def __init__(self, project: ProjectAnalysis, mod: ModuleInfo):
        super().__init__(project, mod, emit=True)

    def _stmt_If(self, stmt) -> None:
        # ``if __name__ == "__main__": main()`` is an entry point: the
        # callee builds its own executor, so RS118 does not apply.
        if _is_main_guard(stmt.test):
            return
        super()._stmt_If(stmt)

    def analyze(self) -> None:
        for stmt in self.mod.tree.body:
            self.exec_stmt(stmt)
        # RS117: backend handle parked on a module global.
        for assign in self.mod.module_assigns:
            value = self.eval(assign.value)
            if value.backend and "repro/backends/" not in \
                    self.mod.relpath:
                self.emit(
                    "RS117", assign,
                    "backend handle stored on a module-level global "
                    "escapes the executor contract; resolve backends "
                    "inside the executor that owns them")

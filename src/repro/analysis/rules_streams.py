"""Stream-scheduler rule: RS108 multi-GPU charges go through streams.

The multi-GPU executor's modeled elapsed time is the critical path
through the :class:`repro.gpu.streams.StreamScheduler` DAG.  A direct
``device.charge(...)`` inside ``repro/gpu/multigpu.py`` charges the
timeline *without* advancing the scheduler frontier, so the charged
seconds silently vanish from ``MultiGPUExecutor.seconds`` — phase sums
and elapsed time disagree and the Figure 15 ablation is corrupted.
Every charge in that module must be submitted via the stream API
(``self.streams.submit`` / ``submit_group`` or the ``_charge_*``
helpers that wrap them).
"""

from __future__ import annotations

import ast
from typing import Tuple

from .engine import BaseChecker, register

__all__ = ["StreamChargeChecker", "STREAM_SCOPES"]

#: Path fragments (posix) where RS108 is enforced: the executors whose
#: clock is the stream scheduler's critical path.
STREAM_SCOPES: Tuple[str, ...] = ("repro/gpu/multigpu.py",)


@register
class StreamChargeChecker(BaseChecker):
    """RS108: no direct ``.charge(...)`` in the stream-scheduled
    multi-GPU executor.

    Flags any attribute call ending in ``.charge`` (``device.charge``,
    ``self.device.charge``, ``dev.timeline.charge``, ...) inside
    ``repro/gpu/multigpu.py``.  Time must flow through
    ``self.streams.submit``/``submit_group`` so the scheduler's
    frontier — and therefore ``seconds`` — sees it.
    """

    rule = "RS108"
    summary = ("multi-GPU charges must go through the stream scheduler "
               "(streams.submit/submit_group), not device.charge")

    def run(self):
        if not any(scope in self.ctx.relpath for scope in STREAM_SCOPES):
            return self.findings
        return super().run()

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "charge":
            self.emit(node, "direct .charge() bypasses the stream "
                            "scheduler; submit via self.streams so the "
                            "critical-path clock sees this work")
        self.generic_visit(node)

"""Stream-scheduler rules: RS108 plus the RS109–RS112 concurrency lints.

The multi-GPU executor's modeled elapsed time is the critical path
through the :class:`repro.gpu.streams.StreamScheduler` DAG, so the
hazards of a real stream runtime apply: a dropped event or a transfer
submitted with no ordering doesn't crash — it silently shifts the
critical path and corrupts the Figure 15 numbers.  RS108 keeps all
charging on the stream API; RS109–RS111 catch dropped syncs, unordered
transfers, and missing race-sanitizer annotations *before* a run;
RS112 schema-checks ``restore()`` call sites.  The dynamic complement
is :mod:`repro.analysis.races` (see docs/static_analysis.md, "Race
sanitizer").

RS109/RS110/RS112 apply to any module that imports
:mod:`repro.gpu.streams` (the fingerprint of code driving the
scheduler); RS111 is scoped to ``repro/gpu/multigpu.py``, the one
module whose annotations the fig15 race check depends on.
"""

from __future__ import annotations

import ast
from typing import Optional, Tuple

from .engine import BaseChecker, ModuleContext, register

__all__ = ["StreamChargeChecker", "DroppedEventChecker",
           "UnorderedTransferChecker", "MissingAccessChecker",
           "RestoreSchemaChecker", "STREAM_SCOPES", "TRANSFER_STREAMS",
           "STATE_KEYS"]

#: Path fragments (posix) where RS108/RS111 are enforced: the executors
#: whose clock is the stream scheduler's critical path.
STREAM_SCOPES: Tuple[str, ...] = ("repro/gpu/multigpu.py",)

#: Stream names whose submissions move data: these are exactly the
#: submissions whose ordering a missing edge silently breaks.
TRANSFER_STREAMS = ("comms", "h2d", "d2h", "pcie")

#: Keys a :meth:`StreamScheduler.state` snapshot always carries —
#: what RS112 demands of dict literals fed to ``restore()``.
STATE_KEYS = frozenset({"ready", "busy", "frontier", "submissions"})


def _imports_streams(ctx: ModuleContext) -> bool:
    """True when the module imports :mod:`repro.gpu.streams` (by module
    or by name) — the scope gate for the concurrency lints, so an
    unrelated ``executor.submit`` (e.g. concurrent.futures) is never
    flagged."""
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ImportFrom):
            mod = node.module or ""
            if mod == "streams" or mod.endswith(".streams"):
                return True
            if any(alias.name in ("StreamScheduler", "StreamEvent")
                   for alias in node.names):
                return True
        elif isinstance(node, ast.Import):
            if any(alias.name.endswith(".streams")
                   for alias in node.names):
                return True
    return False


def _is_submit_call(node: ast.Call) -> Optional[str]:
    """``"submit"``/``"submit_group"`` when ``node`` is a method call on
    a stream scheduler-ish receiver, else ``None``."""
    func = node.func
    if isinstance(func, ast.Attribute) and func.attr in ("submit",
                                                         "submit_group"):
        return func.attr
    return None


def _keyword(node: ast.Call, name: str) -> Optional[ast.expr]:
    for kw in node.keywords:
        if kw.arg == name:
            return kw.value
    return None


def _is_empty_literal(node: Optional[ast.expr]) -> bool:
    """True for an absent keyword or a literal ``()``/``[]``/``False``/
    ``None`` — the shapes that pin "no ordering was requested" down
    statically.  Any dynamic expression is given the benefit of the
    doubt."""
    if node is None:
        return True
    if isinstance(node, (ast.Tuple, ast.List)) and not node.elts:
        return True
    if isinstance(node, ast.Constant) and not node.value:
        return True
    return False


@register
class StreamChargeChecker(BaseChecker):
    """RS108: no direct ``.charge(...)`` in the stream-scheduled
    multi-GPU executor.

    Flags any attribute call ending in ``.charge`` (``device.charge``,
    ``self.device.charge``, ``dev.timeline.charge``, ...) inside
    ``repro/gpu/multigpu.py``.  Time must flow through
    ``self.streams.submit``/``submit_group`` so the scheduler's
    frontier — and therefore ``seconds`` — sees it.
    """

    rule = "RS108"
    summary = ("multi-GPU charges must go through the stream scheduler "
               "(streams.submit/submit_group), not device.charge")

    def run(self):
        if not any(scope in self.ctx.relpath for scope in STREAM_SCOPES):
            return self.findings
        return super().run()

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "charge":
            self.emit(node, "direct .charge() bypasses the stream "
                            "scheduler; submit via self.streams so the "
                            "critical-path clock sees this work")
        self.generic_visit(node)


@register
class DroppedEventChecker(BaseChecker):
    """RS109: a returned ``StreamEvent`` dropped on the floor.

    A bare-statement ``submit``/``submit_group`` that asks for no
    ordering (``deps``/``after_all`` absent) discards the only handle
    later work could synchronize on — the static shape of a dropped
    sync.  A bare ``barrier()`` statement is flagged unconditionally:
    it computes a join event and throws it away, a pure no-op.
    Submissions that pass ``deps=`` or ``after_all=`` are already
    ordered, so discarding their event is fine.
    """

    rule = "RS109"
    summary = ("StreamEvent discarded: bare submit with no deps/after_all "
               "(or a bare barrier()) drops the sync handle")

    def run(self):
        if not _imports_streams(self.ctx):
            return self.findings
        return super().run()

    def visit_Expr(self, node: ast.Expr) -> None:
        call = node.value
        if isinstance(call, ast.Call):
            func = call.func
            if isinstance(func, ast.Attribute) and func.attr == "barrier" \
                    and not call.args and not call.keywords:
                self.emit(node, "barrier() event discarded: the join "
                                "only exists through its StreamEvent; "
                                "keep it and pass it via deps=")
            elif _is_submit_call(call) is not None \
                    and _keyword(call, "deps") is None \
                    and _keyword(call, "after_all") is None:
                self.emit(node, f"StreamEvent of {_is_submit_call(call)}() "
                                "discarded and no deps=/after_all= given; "
                                "nothing can ever order work after this "
                                "submission — keep the event or declare "
                                "the ordering")
        self.generic_visit(node)


@register
class UnorderedTransferChecker(BaseChecker):
    """RS110: a transfer submitted with no ordering at all.

    A ``submit`` onto a comms/h2d/d2h stream with an empty ``deps`` and
    no ``after_all`` starts the copy the moment the copy engine is
    free — almost always before its producer finished.  The dynamic
    sanitizer reports this as a race at run time; this rule catches the
    shape at review time.
    """

    rule = "RS110"
    summary = ("transfer submit (comms/h2d/d2h) with empty deps and no "
               "after_all: the copy is ordered by nothing")

    def run(self):
        if not _imports_streams(self.ctx):
            return self.findings
        return super().run()

    def visit_Call(self, node: ast.Call) -> None:
        if _is_submit_call(node) == "submit":
            stream = _keyword(node, "stream")
            phase = node.args[0] if node.args else None
            on_transfer = (
                isinstance(stream, ast.Constant)
                and stream.value in TRANSFER_STREAMS) or (
                stream is None
                and isinstance(phase, ast.Constant)
                and phase.value == "comms")
            if on_transfer \
                    and _is_empty_literal(_keyword(node, "deps")) \
                    and _is_empty_literal(_keyword(node, "after_all")):
                self.emit(node, "transfer submitted with no deps= and no "
                                "after_all=: it starts whenever the copy "
                                "engine is free, racing its producer; "
                                "pass the producer's StreamEvent")
        self.generic_visit(node)


@register
class MissingAccessChecker(BaseChecker):
    """RS111: multi-GPU submissions must declare ``reads=``/``writes=``.

    The fig15 race check is only as good as the buffer annotations; a
    submission without them is invisible to the happens-before
    sanitizer, so a missing edge through it can never be detected.
    Enforced in ``repro/gpu/multigpu.py`` (the annotated executor);
    helpers forwarding ``reads=reads``/``writes=writes`` count.
    """

    rule = "RS111"
    summary = ("submit/submit_group in multigpu.py without reads=/writes= "
               "buffer declarations (invisible to the race sanitizer)")

    def run(self):
        if not any(scope in self.ctx.relpath for scope in STREAM_SCOPES):
            return self.findings
        return super().run()

    def visit_Call(self, node: ast.Call) -> None:
        kind = _is_submit_call(node)
        if kind is not None \
                and _keyword(node, "reads") is None \
                and _keyword(node, "writes") is None:
            self.emit(node, f"{kind}() declares no reads=/writes= "
                            "buffers: the race sanitizer cannot see "
                            "this submission's accesses; name the "
                            "logical buffers it touches")
        self.generic_visit(node)


@register
class RestoreSchemaChecker(BaseChecker):
    """RS112: ``restore()`` fed something that is not a ``state()``
    snapshot.

    The replay contract is ``sched.restore(sched.state())`` (possibly
    through JSON).  At call sites this rule pins down the statically
    checkable shapes: a dict literal must carry every snapshot key
    (``ready``/``busy``/``frontier``/``submissions``), and a literal
    non-dict argument (or wrong arity) is always wrong.  Variables and
    other dynamic expressions pass — the scheduler still validates at
    run time.
    """

    rule = "RS112"
    summary = ("restore() argument is not a state() snapshot (dict "
               "literal missing snapshot keys, or non-dict literal)")

    def run(self):
        if not _imports_streams(self.ctx):
            return self.findings
        return super().run()

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "restore":
            self._check_restore(node)
        self.generic_visit(node)

    def _check_restore(self, node: ast.Call) -> None:
        if len(node.args) != 1 or node.keywords:
            self.emit(node, "restore() takes exactly one positional "
                            "argument: a state() snapshot dict")
            return
        arg = node.args[0]
        if isinstance(arg, ast.Dict):
            keys = {k.value for k in arg.keys
                    if isinstance(k, ast.Constant)}
            missing = STATE_KEYS - keys
            if None in arg.keys:       # ** splat: can't tell, pass
                return
            if missing:
                self.emit(node, "restore() dict literal is missing "
                                f"snapshot key(s) {sorted(missing)}; "
                                "only state() output (or its JSON "
                                "round-trip) is a valid snapshot")
        elif isinstance(arg, ast.Constant):
            self.emit(node, f"restore() fed a {type(arg.value).__name__} "
                            "literal; it needs a state() snapshot dict")

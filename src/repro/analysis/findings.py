"""Finding objects and the exit-code contract shared by CLI and CI.

A finding is one rule violation at one source location.  Findings are
hashable through a *fingerprint* that deliberately excludes line and
column numbers: baselined findings must survive unrelated edits that
shift code up or down, so the fingerprint keys on the rule, the file,
the enclosing definition, and the message text instead.
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict, dataclass
from typing import Dict

__all__ = [
    "AnalysisFinding",
    "EXIT_CLEAN",
    "EXIT_FINDINGS",
    "EXIT_ERROR",
]

#: Exit code when the tree is clean (or every finding is baselined).
EXIT_CLEAN = 0
#: Exit code when at least one non-baselined finding was reported.
EXIT_FINDINGS = 1
#: Exit code for usage/configuration errors (bad path, bad rule name).
EXIT_ERROR = 2


@dataclass(frozen=True)
class AnalysisFinding:
    """One rule violation.

    Attributes
    ----------
    rule:
        The rule identifier (``RS101`` ... ``RS106``).
    path:
        Path of the offending file, as scanned (normalized to posix
        separators so fingerprints agree across platforms).
    line, col:
        1-based line and 0-based column of the offending node.
    message:
        Human-readable description; stable across unrelated edits.
    context:
        Dotted name of the enclosing definition (``<module>`` for
        module-level findings) — part of the baseline fingerprint.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    context: str = "<module>"

    def fingerprint(self) -> str:
        """Location-insensitive identity used by the baseline file."""
        digest = hashlib.sha1(self.message.encode("utf-8")).hexdigest()[:12]
        return f"{self.rule}:{self.path}:{self.context}:{digest}"

    def render(self) -> str:
        """The one-line human format: ``path:line:col: RSxxx message``."""
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.rule} {self.message}")

    def to_dict(self) -> Dict:
        out = asdict(self)
        out["fingerprint"] = self.fingerprint()
        return out

"""Repo-hygiene rules: RS104 error-taxonomy, RS105 nondeterministic-rng,
RS106 missing-``__all__`` / export drift, RS113 stale suppressions.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set

from .engine import BaseChecker, all_rules, register
from .findings import AnalysisFinding
from .rules_executor import dotted_name

__all__ = ["ErrorTaxonomyChecker", "NondeterministicRngChecker",
           "ExportDriftChecker", "StaleSuppressionChecker"]


@register
class ErrorTaxonomyChecker(BaseChecker):
    """RS104: raise the :mod:`repro.errors` hierarchy, not bare builtins.

    Callers are promised that every library failure derives from
    ``ReproError`` — a bare ``raise ValueError`` escapes that contract.
    The hierarchy's multiple-inheritance classes (``ShapeError`` is a
    ``ValueError``, etc.) make the switch free for callers.
    """

    rule = "RS104"
    summary = "raise repro.errors classes instead of bare builtins"

    _BANNED = {"ValueError", "TypeError", "RuntimeError", "KeyError",
               "IndexError", "ArithmeticError", "Exception", "OSError"}
    #: Mapping used to suggest the closest in-hierarchy replacement.
    _SUGGEST = {"ValueError": "ConfigurationError or ShapeError",
                "TypeError": "ConfigurationError",
                "RuntimeError": "DeviceError or ConvergenceError",
                "ArithmeticError": "NotOrthogonalError or "
                                   "CholeskyBreakdownError"}

    def run(self):
        # The hierarchy module itself is the one place allowed to talk
        # about builtin exception classes.
        if self.ctx.relpath.endswith("errors.py"):
            return self.findings
        return super().run()

    def visit_Raise(self, node: ast.Raise) -> None:
        exc = node.exc
        if isinstance(exc, ast.Call):
            exc = exc.func
        name = dotted_name(exc) if exc is not None else ""
        if name in self._BANNED:
            hint = self._SUGGEST.get(name, "a ReproError subclass")
            self.emit(node, f"raise {name} bypasses the repro.errors "
                            f"hierarchy; use {hint} (see repro/errors.py)")
        self.generic_visit(node)


@register
class NondeterministicRngChecker(BaseChecker):
    """RS105: randomness must flow through seeded ``Generator`` plumbing.

    The executors own a seeded ``np.random.default_rng`` so every run
    is reproducible end to end; legacy global-state calls
    (``np.random.rand``, ``np.random.seed``, ...) bypass that plumbing
    and make figures non-reproducible.
    """

    rule = "RS105"
    summary = ("module-level np.random.* call bypasses the seeded "
               "Generator plumbing")

    _ALLOWED = {"default_rng", "Generator", "SeedSequence", "PCG64",
                "PCG64DXSM", "Philox", "MT19937", "BitGenerator"}

    def visit_Call(self, node: ast.Call) -> None:
        name = dotted_name(node.func)
        parts = name.split(".")
        if (len(parts) == 3 and parts[0] in ("np", "numpy")
                and parts[1] == "random"
                and parts[2] not in self._ALLOWED):
            self.emit(node, f"{name}() uses the legacy global RNG; pass "
                            "a seeded np.random.Generator (executor.rng "
                            "or np.random.default_rng(seed)) instead")
        self.generic_visit(node)


def _literal_strings(node: ast.expr) -> Optional[List[str]]:
    """Statically evaluate an ``__all__`` value to a list of strings.

    Supports list/tuple displays and ``+`` concatenations of them;
    returns ``None`` when the value is not statically resolvable.
    """
    if isinstance(node, (ast.List, ast.Tuple)):
        out: List[str] = []
        for elt in node.elts:
            if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                out.append(elt.value)
            else:
                return None
        return out
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        left = _literal_strings(node.left)
        right = _literal_strings(node.right)
        if left is not None and right is not None:
            return left + right
    return None


@register
class ExportDriftChecker(BaseChecker):
    """RS106: every module declares ``__all__`` and it matches reality.

    Missing ``__all__`` makes ``from module import *`` and the API docs
    drift silently; names listed but no longer defined are the same bug
    in the other direction.
    """

    rule = "RS106"
    summary = "missing __all__, or __all__ names a binding that no longer exists"

    def run(self):
        # Entry-point stubs export nothing by design; pytest modules
        # (tests/benches/conftest) are collected, never `import *`-ed.
        name = self.ctx.relpath.rsplit("/", 1)[-1]
        if self.ctx.relpath.endswith("__main__.py") or \
                name.startswith("test_") or name == "conftest.py":
            return self.findings
        tree = self.ctx.tree
        bound = self._module_bindings(tree)
        all_node = self._find_all(tree)
        if all_node is None:
            if self._has_public_defs(tree):
                self.emit(tree, "module defines public names but no "
                                "__all__; declare the export list")
            return self.findings
        names = _literal_strings(all_node.value)
        if names is None:
            self.emit(all_node, "__all__ is not a static list of string "
                                "literals; the analyzer (and doc tools) "
                                "cannot verify it")
            return self.findings
        if "*" in bound:
            return self.findings  # star-import: drift is unverifiable
        for name in names:
            if name not in bound:
                self.emit(all_node, f"__all__ exports {name!r} but the "
                                    "module never binds that name")
        seen: Set[str] = set()
        for name in names:
            if name in seen:
                self.emit(all_node, f"__all__ lists {name!r} twice")
            seen.add(name)
        return self.findings

    @staticmethod
    def _find_all(tree: ast.Module) -> Optional[ast.Assign]:
        for stmt in tree.body:
            if isinstance(stmt, ast.Assign):
                for tgt in stmt.targets:
                    if isinstance(tgt, ast.Name) and tgt.id == "__all__":
                        return stmt
        return None

    @staticmethod
    def _has_public_defs(tree: ast.Module) -> bool:
        return any(
            isinstance(s, (ast.FunctionDef, ast.AsyncFunctionDef,
                           ast.ClassDef))
            and not s.name.startswith("_")
            for s in tree.body)

    @staticmethod
    def _module_bindings(tree: ast.Module) -> Set[str]:
        bound: Set[str] = set()

        def add_target(t: ast.expr) -> None:
            if isinstance(t, ast.Name):
                bound.add(t.id)
            elif isinstance(t, (ast.Tuple, ast.List)):
                for e in t.elts:
                    add_target(e)

        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                bound.add(stmt.name)
            elif isinstance(stmt, ast.Assign):
                for t in stmt.targets:
                    add_target(t)
            elif isinstance(stmt, ast.AnnAssign):
                add_target(stmt.target)
            elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
                for alias in stmt.names:
                    if alias.name == "*":
                        # `from x import *`: anything may be bound.
                        return bound | {"*"}
                    bound.add((alias.asname or alias.name).split(".")[0])
            elif isinstance(stmt, (ast.If, ast.Try)):
                # One level of conditional definition (TYPE_CHECKING,
                # version guards) is enough for this codebase.
                for sub in ast.walk(stmt):
                    if isinstance(sub, (ast.FunctionDef,
                                        ast.AsyncFunctionDef,
                                        ast.ClassDef)):
                        bound.add(sub.name)
                    elif isinstance(sub, ast.Assign):
                        for t in sub.targets:
                            add_target(t)
                    elif isinstance(sub, (ast.Import, ast.ImportFrom)):
                        for alias in sub.names:
                            if alias.name != "*":
                                bound.add((alias.asname
                                           or alias.name).split(".")[0])
        return bound


@register
class StaleSuppressionChecker(BaseChecker):
    """RS113: a ``# repro: noqa`` that no longer suppresses anything.

    Suppressions are accepted exceptions; once the code they excused is
    gone, the leftover comment silently re-arms a blanket waiver for
    whatever lands on that line next.  This rule runs after every other
    selected rule (the engine orders it last) and flags noqa lines that
    silenced no finding — but only when every rule the comment names
    actually ran, so a partial ``--select`` can't produce false
    staleness.  A bare noqa needs the full rule set to have run.

    Because a bare noqa would suppress RS113 itself, findings here are
    reported directly rather than through :meth:`BaseChecker.emit`; an
    explicit ``RS113`` in the comment's rule list is the opt-out.
    """

    rule = "RS113"
    summary = ("stale '# repro: noqa' — the suppression no longer "
               "silences any finding")

    def run(self) -> List[AnalysisFinding]:
        everything = set(all_rules()) - {self.rule}
        for line in sorted(self.ctx.noqa):
            if line in self.ctx.used_noqa:
                continue
            rules = self.ctx.noqa[line]
            named = everything if rules is None else {
                r for r in rules if r != self.rule}
            if rules is not None and self.rule in rules:
                continue       # explicit RS113 opt-out
            if not named or not named <= self.ctx.rules_run:
                continue       # can't judge: rules not exercised
            what = ("bare noqa" if rules is None
                    else "noqa " + ", ".join(sorted(rules)))
            # Direct append: emit() would let the very suppression under
            # judgment silence its own staleness report.
            self.findings.append(AnalysisFinding(
                rule=self.rule,
                path=self.ctx.relpath,
                line=line,
                col=0,
                message=f"stale suppression: this {what} silenced no "
                        "finding in this run; delete the comment (or "
                        "add RS113 to keep it deliberately)",
                context="<module>"))
        return self.findings

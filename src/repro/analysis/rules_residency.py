"""RS115-RS119: the cross-module residency/dataflow rule family.

Unlike the per-file AST lints (RS101-RS114), these rules are computed
*project-wide* by :class:`repro.analysis.dataflow.ProjectAnalysis`: the
engine builds one symbol table over every file under analysis, runs the
abstract interpretation once, and attaches the raw findings that landed
in each file to its :class:`~repro.analysis.engine.ModuleContext`.  The
checkers here are thin per-file shims that route those raw findings
through the ordinary noqa/suppression machinery, so ``# repro: noqa
RS115`` at the *sink* line behaves exactly like it does for any other
rule (and RS113 still notices when the suppression goes stale).

Suppression is sink-side by design: the finding is anchored where the
device value is misused, not where it was produced, so a noqa on the
producing line does not silence it.
"""

from __future__ import annotations

from typing import List

from .engine import BaseChecker, register
from .findings import AnalysisFinding

__all__ = [
    "DeviceValueInHostMathChecker",
    "TransferPingPongChecker",
    "BackendHandleEscapeChecker",
    "UntimedSubmitReachChecker",
    "UnseededSamplingFlowChecker",
]


class _ProjectRuleChecker(BaseChecker):
    """Replay the project pass's raw findings for one rule and file."""

    #: Tells the engine this rule needs the cross-module dataflow pass.
    requires_project = True

    def run(self) -> List[AnalysisFinding]:
        for raw in getattr(self.ctx, "project_findings", None) or []:
            if raw.rule != self.rule:
                continue
            if self.ctx.suppressed(self.rule, raw.line):
                continue
            self.findings.append(AnalysisFinding(
                rule=self.rule,
                path=self.ctx.relpath,
                line=raw.line,
                col=raw.col,
                message=raw.message,
                context=raw.context))
        return self.findings


@register
class DeviceValueInHostMathChecker(_ProjectRuleChecker):
    """RS115: device-resident value reaching host-only math.

    A value whose residency is *definitely* ``device`` (produced by
    ``to_device`` or an executor op declared ``@residency(returns=
    "device")``) must pass through ``to_host`` before it is consumed by
    ``hostmath.*``, a comparison/branch condition, ``float()`` /
    ``.item()``-style host reads, a parameter summarized as a host
    sink, or a return from a function declared ``returns="host"``.
    The flow is interprocedural: producing in ``gpu/device.py`` and
    consuming in ``core/subspace.py`` is one finding at the sink.
    """

    rule = "RS115"
    summary = ("device-resident value reaches host-only math without "
               "to_host()")


@register
class TransferPingPongChecker(_ProjectRuleChecker):
    """RS116: host/device transfer ping-pong.

    Two shapes: a value uploaded with ``to_device`` and downloaded with
    ``to_host`` with no device kernel consuming it in between (the
    upload bought nothing), and a value that is already
    device-resident being uploaded again.  Either way a PCIe round-trip
    in the paper's comms fractions (Figs. 9/15) is being spent for
    free.
    """

    rule = "RS116"
    summary = ("transfer ping-pong: h2d followed by d2h (or re-upload) "
               "with no device kernel in between")


@register
class BackendHandleEscapeChecker(_ProjectRuleChecker):
    """RS117: backend handle escaping the executor contract.

    Backend handles (from ``resolve_backend`` and friends) belong to
    the executor that owns them.  Parking one on a module-level global,
    passing one into ``@allow_untimed_math`` diagnostic code, or
    returning one from a public function outside ``repro.backends``
    all create untimed side doors around the kernel/transfer accounting
    in ``BackendStats``.
    """

    rule = "RS117"
    summary = ("backend handle escapes the executor contract (module "
               "global, untimed scope, or public return)")


@register
class UntimedSubmitReachChecker(_ProjectRuleChecker):
    """RS118: timed work submitted with no executor/scheduler in scope.

    ``charge``/``submit``/``submit_group`` calls are modeled (timed)
    work.  Reaching one — directly or through the call graph — from
    module level or from inside an ``@allow_untimed_math`` scope means
    simulated seconds are being charged from a context that declared
    itself outside the timing contract.  Entry points guarded by
    ``if __name__ == "__main__"`` are exempt.
    """

    rule = "RS118"
    summary = ("timed work reachable from a scope with no "
               "executor/scheduler accounting (module level or "
               "@allow_untimed_math)")


@register
class UnseededSamplingFlowChecker(_ProjectRuleChecker):
    """RS119: RNG not derived from ``SamplingConfig.seed`` reaches
    sampling.

    Random sketching is only reproducible when every generator chains
    from the configured seed.  An RNG constructed with no seed (or a
    hard-coded literal) that flows — possibly through calls — into a
    sampling draw (``standard_normal``, ``choice``, ...) silently
    forks the experiment's randomness.  Seeds derived from parameters,
    attributes or config (``cfg.seed``) are blessed.
    """

    rule = "RS119"
    summary = ("RNG not derived from SamplingConfig.seed reaches a "
               "sampling draw")
